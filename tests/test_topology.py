"""Tests for the multi-bottleneck topology subsystem.

Covers the family catalog (parsing, structure, per-hop derived seeds), the
cross-traffic generators, multi-hop dynamics (end-to-end RTT, per-hop
queuing), and the conservation invariants the ISSUE pins down: per hop,
packets enqueued equal packets delivered plus packets still buffered, flows
conserve sent = acked + lost + in-flight, and the FIFO drains interleaved
flows strictly in arrival order.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.netsim import NetworkSimulator
from repro.topology import (
    ConstantBitRate,
    CrossTrafficSource,
    Link,
    OnOff,
    Topology,
    build_topology,
    parse_topology,
    topology_family_specs,
)
from repro.traces.trace import BandwidthTrace, mbps_to_pps


class FixedWindowController(CubicController):
    """CUBIC shell with a window that never moves (deterministic tests)."""

    def __init__(self, cwnd=20.0):
        super().__init__(initial_cwnd=cwnd)

    def on_tick(self, feedback):  # pragma: no cover - trivial
        pass


def constant_trace(mbps=24.0):
    return BandwidthTrace.constant(mbps, duration=120.0)


def test_topology_package_imports_cold():
    """`import repro.topology` must work as the *first* repro import.

    The traces and cc packages import each other; the topology package guards
    against entering that cycle from the traces side on a fresh interpreter.
    """
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = {**os.environ, "PYTHONPATH": src}
    result = subprocess.run(
        [sys.executable, "-c", "from repro.topology import build_topology"],
        capture_output=True, text=True, env=env,
    )
    assert result.returncode == 0, result.stderr


# ---------------------------------------------------------------------- #
# Spec parsing and the family catalog
# ---------------------------------------------------------------------- #
class TestParseTopology:
    def test_plain_and_counted_specs(self):
        assert parse_topology("single_bottleneck") == ("single_bottleneck", 1)
        assert parse_topology("chain(4)") == ("chain", 4)
        assert parse_topology("parking_lot(2)") == ("parking_lot", 2)
        assert parse_topology("dumbbell") == ("dumbbell", 3)
        assert parse_topology(" chain( 3 ) ") == ("chain", 3)
        assert parse_topology("fan_in(4)") == ("fan_in", 4)
        assert parse_topology("fan_in") == ("fan_in", 3)
        assert parse_topology("tree(2)") == ("tree", 2)
        assert parse_topology("shared_segment") == ("shared_segment", 5)

    def test_malformed_specs_rejected(self):
        for bad in ("", "nope", "chain(", "chain(0)", "chain(-1)", "chain(2", "42"):
            with pytest.raises(ValueError):
                parse_topology(bad)

    def test_fixed_shape_families_reject_counts(self):
        with pytest.raises(ValueError):
            parse_topology("dumbbell(5)")
        with pytest.raises(ValueError):
            parse_topology("single_bottleneck(2)")
        with pytest.raises(ValueError):
            parse_topology("shared_segment(3)")

    def test_branching_families_need_two_branches(self):
        with pytest.raises(ValueError):
            parse_topology("fan_in(1)")
        with pytest.raises(ValueError):
            parse_topology("tree(1)")

    def test_family_specs_listing_parses(self):
        specs = topology_family_specs()
        assert len(specs) >= 4
        for spec in specs:
            parse_topology(spec)


class TestFamilyCatalog:
    def test_chain_structure(self):
        trace = constant_trace()
        topo = build_topology("chain(3)", trace, min_rtt=0.06, buffer_bdp=1.0, seed=1)
        assert topo.n_hops == 3
        assert topo.link_names == ["hop1", "hop2", "hop3"]
        # The trace-driven bottleneck sits at the end; upstream hops are faster.
        assert topo.bottleneck_name == "hop3"
        assert topo.bottleneck.queue.trace is trace
        for name in ("hop1", "hop2"):
            assert topo.links[name].queue.trace.mean_mbps > trace.mean_mbps
        # The path RTT is split evenly across hops and sums to min_rtt.
        assert topo.path_rtt(0) == pytest.approx(0.06)
        assert topo.links["hop1"].delay == pytest.approx(0.02)

    def test_parking_lot_has_one_cross_source_per_segment(self):
        topo = build_topology("parking_lot(3)", constant_trace(), min_rtt=0.06, seed=1)
        assert topo.n_hops == 3
        assert len(topo.cross_traffic) == 3
        paths = {source.path for source in topo.cross_traffic}
        assert paths == {("seg1",), ("seg2",), ("seg3",)}
        assert all(source.flow_id < 0 for source in topo.cross_traffic)

    def test_dumbbell_structure(self):
        topo = build_topology("dumbbell", constant_trace(), min_rtt=0.08, seed=1)
        assert topo.link_names == ["access-src", "bottleneck", "access-dst"]
        assert topo.bottleneck_name == "bottleneck"
        assert topo.path_rtt(0) == pytest.approx(0.08)
        (source,) = topo.cross_traffic
        assert source.path == ("bottleneck",)
        assert isinstance(source.generator, OnOff)

    def test_per_hop_seeds_are_derived_and_distinct(self):
        # Observed through behaviour: with stochastic loss enabled, the
        # per-hop RNGs drive the loss samples, so identical coordinates must
        # reproduce identical loss sequences and different base seeds must
        # diverge.
        def loss_sequence(seed):
            topo = build_topology("single_bottleneck", constant_trace(), min_rtt=0.06,
                                  random_loss_rate=0.3, stochastic_loss=True, seed=seed)
            queue = topo.bottleneck.queue
            return tuple(queue.enqueue(0, 8.0, 0.01 * i)[2] for i in range(50))

        assert loss_sequence(9) == loss_sequence(9)
        assert loss_sequence(9) != loss_sequence(10)
        # Distinct hops of one topology get distinct RNG streams.
        topo = build_topology("parking_lot(3)", constant_trace(), min_rtt=0.06,
                              random_loss_rate=0.0, seed=9)
        for link in topo.ordered_links:
            link.queue.random_loss_rate = 0.3
            link.queue.stochastic_loss = True
        sequences = [tuple(link.queue.enqueue(0, 8.0, 0.01 * i)[2] for i in range(50))
                     for link in topo.ordered_links]
        assert len(set(sequences)) == len(sequences)

    def test_random_loss_applies_at_bottleneck_hop_only(self):
        topo = build_topology("chain(3)", constant_trace(), min_rtt=0.06,
                              random_loss_rate=0.02, seed=1)
        assert topo.links["hop3"].queue.random_loss_rate == pytest.approx(0.02)
        assert topo.links["hop1"].queue.random_loss_rate == 0.0

    def test_fan_in_structure(self):
        trace = constant_trace()
        topo = build_topology("fan_in(3)", trace, min_rtt=0.06, seed=1)
        assert topo.link_names == ["leaf1", "leaf2", "leaf3", "bottleneck"]
        assert topo.bottleneck_name == "bottleneck"
        assert topo.bottleneck.queue.trace is trace
        # Every flow enters over its own leaf (round-robin) and joins at the
        # shared root; all routes see the full path RTT.
        for flow_id, leaf in ((0, "leaf1"), (1, "leaf2"), (2, "leaf3"), (3, "leaf1")):
            assert topo.route_names(flow_id) == (leaf, "bottleneck")
            assert topo.path_rtt(flow_id) == pytest.approx(0.06)
        # Leaves are faster than the trace-driven root.
        for name in ("leaf1", "leaf2", "leaf3"):
            assert topo.links[name].queue.trace.mean_mbps > trace.mean_mbps
        # Declaring leaves before the root is already a topological order.
        assert topo.drain_order == ["leaf1", "leaf2", "leaf3", "bottleneck"]

    def test_tree_structure(self):
        topo = build_topology("tree(2)", constant_trace(), min_rtt=0.08, seed=1)
        assert topo.link_names == ["bottleneck", "branch1", "branch2"]
        assert topo.route_names(0) == ("bottleneck", "branch1")
        assert topo.route_names(1) == ("bottleneck", "branch2")
        assert topo.path_rtt(0) == pytest.approx(0.08)
        assert topo.drain_order[0] == "bottleneck"

    def test_shared_segment_structure(self):
        topo = build_topology("shared_segment", constant_trace(), min_rtt=0.08, seed=1)
        assert topo.bottleneck_name == "shared"
        assert topo.route_names(0) == ("access-a", "shared", "exit-a")
        assert topo.route_names(1) == ("access-b", "shared", "exit-b")
        assert topo.path_rtt(0) == pytest.approx(0.08)
        assert topo.path_rtt(1) == pytest.approx(0.08)
        # Both branches fork in before the shared middle and fork out after it.
        order = topo.drain_order
        assert order.index("access-a") < order.index("shared") < order.index("exit-a")
        assert order.index("access-b") < order.index("shared") < order.index("exit-b")


class TestTopologyValidation:
    def make_links(self):
        return [Link.build(f"l{i}", constant_trace(), delay=0.01, buffer_rtt=0.03)
                for i in range(3)]

    def test_duplicate_link_names_rejected(self):
        link = Link.build("dup", constant_trace(), delay=0.01, buffer_rtt=0.03)
        other = Link.build("dup", constant_trace(), delay=0.01, buffer_rtt=0.03)
        with pytest.raises(ValueError):
            Topology("t", [link, other])

    def test_route_cycles_rejected(self):
        links = self.make_links()
        # A route running against the default full-path chain closes a cycle.
        with pytest.raises(ValueError, match="cycle"):
            Topology("t", links, routes={0: ["l2", "l0"]})
        with pytest.raises(ValueError):
            Topology("t", links, routes={0: ["l0", "nope"]})
        # Two explicit routes that disagree on the hop order also cycle, even
        # with a route cycle suppressing the full-path default.
        with pytest.raises(ValueError, match="cycle"):
            Topology("t", links, route_cycle=[("l0", "l1"), ("l1", "l0")])
        with pytest.raises(ValueError):
            Topology("t", links, routes={0: ["l1", "l1"]})

    def test_dag_routes_ignore_declaration_order(self):
        # A fork/join DAG declared in a non-topological order still drains
        # topologically: both access links before the shared middle.
        shared = Link.build("shared", constant_trace(12.0), delay=0.01, buffer_rtt=0.03)
        access_a = Link.build("a", constant_trace(48.0), delay=0.01, buffer_rtt=0.03)
        access_b = Link.build("b", constant_trace(48.0), delay=0.01, buffer_rtt=0.03)
        topo = Topology("t", [shared, access_a, access_b],
                        route_cycle=[("a", "shared"), ("b", "shared")])
        assert topo.drain_order.index("a") < topo.drain_order.index("shared")
        assert topo.drain_order.index("b") < topo.drain_order.index("shared")
        assert topo.route_names(0) == ("a", "shared")
        assert topo.route_names(1) == ("b", "shared")

    def test_empty_route_cycle_rejected(self):
        with pytest.raises(ValueError):
            Topology("t", self.make_links(), route_cycle=[])

    def test_cross_traffic_ids_unique_and_negative(self):
        links = self.make_links()
        cbr = ConstantBitRate(5.0)
        with pytest.raises(ValueError):
            CrossTrafficSource("x", flow_id=1, path=("l0",), generator=cbr)
        dup = [CrossTrafficSource("a", -1, ("l0",), cbr),
               CrossTrafficSource("b", -1, ("l1",), cbr)]
        with pytest.raises(ValueError):
            Topology("t", links, cross_traffic=dup)

    def test_simulator_rejects_negative_flow_ids(self):
        with pytest.raises(ValueError):
            NetworkSimulator(
                BottleneckLink(constant_trace(), min_rtt=0.04),
                [Flow(-1, FixedWindowController())],
            )

    def test_bottleneck_defaults_to_slowest_hop(self):
        slow = Link.build("slow", constant_trace(12.0), delay=0.01, buffer_rtt=0.03)
        fast = Link.build("fast", constant_trace(48.0), delay=0.01, buffer_rtt=0.03)
        assert Topology("t", [fast, slow]).bottleneck_name == "slow"


# ---------------------------------------------------------------------- #
# Topological order: heap-based tie-break pinned to the legacy min-scan
# ---------------------------------------------------------------------- #
class TestTopologicalOrder:
    """The heap-keyed Kahn tie-break must be byte-identical to the old
    ``min(ready, key=self._order.index)`` re-scan it replaced."""

    @staticmethod
    def reference_order(topo):
        """The pre-fix quadratic algorithm, verbatim, as the oracle."""
        declaration = topo.link_names
        successors = {name: set() for name in declaration}
        indegree = {name: 0 for name in declaration}
        for path in topo._route_adjacencies():
            for upstream, downstream in zip(path, path[1:]):
                if downstream not in successors[upstream]:
                    successors[upstream].add(downstream)
                    indegree[downstream] += 1
        order = []
        ready = [name for name in declaration if indegree[name] == 0]
        while ready:
            name = min(ready, key=declaration.index)
            ready.remove(name)
            order.append(name)
            for downstream in successors[name]:
                indegree[downstream] -= 1
                if indegree[downstream] == 0:
                    ready.append(downstream)
        return order

    @pytest.mark.parametrize("spec", ["single_bottleneck", "chain(4)", "parking_lot(3)",
                                      "dumbbell", "fan_in(4)", "tree(3)",
                                      "shared_segment"])
    def test_families_match_reference(self, spec):
        topo = build_topology(spec, constant_trace(), min_rtt=0.06, seed=1)
        assert topo.drain_order == self.reference_order(topo)

    def test_scrambled_dag_matches_reference(self):
        # Hops declared in an order that is *not* topological, with fork/join
        # routes, so the tie-break actually has choices to make.
        links = [Link.build(name, constant_trace(), delay=0.01, buffer_rtt=0.05)
                 for name in ("exit", "mid-b", "entry-a", "mid-a", "entry-b")]
        topo = Topology("scrambled", links,
                        route_cycle=[("entry-a", "mid-a", "exit"),
                                     ("entry-b", "mid-b", "exit"),
                                     ("entry-a", "mid-b", "exit")])
        reference = self.reference_order(topo)
        assert topo.drain_order == reference
        # Structural sanity: every route runs entry → mid → shared exit.
        assert topo.drain_order[-1] == "exit"
        assert topo.drain_order.index("entry-a") < topo.drain_order.index("mid-a")
        assert topo.drain_order.index("entry-b") < topo.drain_order.index("mid-b")

    def test_wide_fan_in_matches_reference(self):
        # A wide incast exercises many simultaneous ready hops (the case the
        # old implementation re-scanned quadratically).
        topo = build_topology("fan_in(32)", constant_trace(), min_rtt=0.06, seed=1)
        assert topo.drain_order == self.reference_order(topo)
        assert topo.drain_order == [f"leaf{i}" for i in range(1, 33)] + ["bottleneck"]


# ---------------------------------------------------------------------- #
# Cross-traffic generators
# ---------------------------------------------------------------------- #
class TestGenerators:
    def test_cbr_rate(self):
        assert ConstantBitRate(12.0).rate_pps(3.7) == pytest.approx(mbps_to_pps(12.0))

    def test_onoff_duty_cycle(self):
        gen = OnOff(10.0, on_seconds=1.0, off_seconds=1.0)
        assert gen.rate_pps(0.5) > 0.0
        assert gen.rate_pps(1.5) == 0.0
        assert gen.rate_pps(2.5) > 0.0

    def test_onoff_phase_shifts_bursts(self):
        gen = OnOff(10.0, on_seconds=1.0, off_seconds=1.0, phase=1.0)
        assert gen.rate_pps(0.5) == 0.0
        assert gen.rate_pps(1.5) > 0.0

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            ConstantBitRate(-1.0)
        with pytest.raises(ValueError):
            OnOff(10.0, on_seconds=0.0, off_seconds=1.0)


# ---------------------------------------------------------------------- #
# Multi-hop dynamics
# ---------------------------------------------------------------------- #
class TestMultiHopDynamics:
    def test_chain_rtt_includes_all_hop_delays(self):
        topo = build_topology("chain(3)", constant_trace(), min_rtt=0.09, seed=1)
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(10.0))])
        assert sim.path_rtt(0) == pytest.approx(0.09)
        for _ in range(400):
            sim.tick()
        flow = sim.flows[0]
        # The observed minimum RTT can never beat the summed path delay.
        assert flow.min_rtt >= 0.09 - 1e-9
        assert flow.total_acked > 0.0

    def test_queue_builds_at_bottleneck_hop(self):
        # A standing queue (window ≈ 2.4× BDP) must sit at the trace-driven
        # last hop once the flow self-clocks; the faster upstream hops drain.
        topo = build_topology("chain(3)", constant_trace(12.0), min_rtt=0.05,
                              buffer_bdp=3.0, seed=1)
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(120.0))])
        for _ in range(600):
            sim.tick()
        occupancy = sim.hop_occupancy()
        assert occupancy["hop3"] > 10.0
        assert occupancy["hop3"] > 10.0 * max(occupancy["hop1"], occupancy["hop2"], 1e-9)

    def test_parking_lot_cross_traffic_reduces_throughput(self):
        trace = constant_trace(24.0)
        def run(spec):
            sim = NetworkSimulator(
                build_topology(spec, trace, min_rtt=0.04, buffer_bdp=1.0, seed=2),
                [Flow(0, CubicController())],
            )
            result = sim.run(8.0)
            stats = result.stats_for(0)
            return stats.acked[200:].sum()
        contended = run("parking_lot(2)")
        clean = run("chain(2)")
        assert contended < clean * 0.9

    def test_cross_traffic_stats_are_tracked(self):
        topo = build_topology("parking_lot(2)", constant_trace(24.0), min_rtt=0.04, seed=2)
        sim = NetworkSimulator(topo, [Flow(0, CubicController())])
        sim.run(4.0)
        for source in topo.cross_traffic:
            counters = sim.cross_stats[source.flow_id]
            assert counters["offered"] > 0.0
            assert counters["delivered"] > 0.0
            assert counters["delivered"] <= counters["offered"] + 1e-9

    def test_dumbbell_bursts_inflate_delay(self):
        trace = constant_trace(24.0)
        def p95_delay(spec):
            sim = NetworkSimulator(
                build_topology(spec, trace, min_rtt=0.04, buffer_bdp=2.0, seed=4),
                [Flow(0, FixedWindowController(60.0))],
            )
            result = sim.run(8.0)
            delays = result.stats_for(0).queuing_delay
            return float(np.percentile(delays[delays > 0], 95)) if (delays > 0).any() else 0.0
        assert p95_delay("dumbbell") > p95_delay("single_bottleneck")

    def test_transit_drops_reach_the_sender(self):
        # A tiny mid-path buffer forces drops at hop2; the sender must see them
        # as losses one RTT later (not silently vanish).
        fast = Link.build("hop1", constant_trace(96.0), delay=0.01, buffer_rtt=0.04,
                          buffer_bdp=5.0)
        tiny = Link.build("hop2", constant_trace(12.0), delay=0.01, buffer_rtt=0.04,
                          buffer_packets=3.0)
        topo = Topology("tiny-mid", [fast, tiny], bottleneck="hop2")
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(400.0))])
        sim.run(4.0)
        flow = sim.flows[0]
        assert flow.total_lost > 0.0
        assert tiny.queue.total_dropped > 0.0


# ---------------------------------------------------------------------- #
# Conservation invariants and FIFO ordering (ISSUE satellite)
# ---------------------------------------------------------------------- #
class TestConservationInvariants:
    @pytest.mark.parametrize("spec", ["single_bottleneck", "chain(3)", "parking_lot(3)",
                                      "dumbbell", "fan_in(3)", "tree(2)",
                                      "shared_segment"])
    def test_per_hop_enqueued_equals_delivered_plus_buffered(self, spec):
        topo = build_topology(spec, constant_trace(18.0), min_rtt=0.05, buffer_bdp=0.8,
                              random_loss_rate=0.01, seed=6)
        sim = NetworkSimulator(topo, [Flow(0, CubicController())])
        sim.run(6.0)
        for link in topo.ordered_links:
            queue = link.queue
            assert queue.total_enqueued == pytest.approx(
                queue.total_delivered + queue.queue_occupancy, abs=1e-9), link.name

    @pytest.mark.parametrize("spec", ["chain(3)", "parking_lot(2)", "fan_in(3)",
                                      "tree(2)", "shared_segment"])
    def test_flow_conservation_sent_equals_acked_lost_inflight(self, spec):
        topo = build_topology(spec, constant_trace(18.0), min_rtt=0.05, buffer_bdp=0.8,
                              seed=6)
        sim = NetworkSimulator(topo, [Flow(0, CubicController())])
        sim.run(6.0)
        flow = sim.flows[0]
        assert flow.total_sent == pytest.approx(
            flow.total_acked + flow.total_lost + flow.inflight, abs=1e-9)
        assert flow.total_acked + flow.total_lost <= flow.total_sent + 1e-9

    @pytest.mark.parametrize("spec", ["fan_in(3)", "shared_segment"])
    def test_dag_conservation_with_competing_flows(self, spec):
        # Several flows forking in over their own branches and joining at the
        # shared bottleneck: per-hop and per-flow conservation must both hold
        # on the DAG, including for flows with partial lifetimes.
        topo = build_topology(spec, constant_trace(18.0), min_rtt=0.05, buffer_bdp=0.8,
                              seed=6)
        flows = [Flow(0, CubicController()),
                 Flow(1, CubicController(), start_time=1.0),
                 Flow(2, CubicController(), start_time=2.0, stop_time=4.0)]
        sim = NetworkSimulator(topo, flows)
        sim.run(6.0)
        for link in topo.ordered_links:
            queue = link.queue
            assert queue.total_enqueued == pytest.approx(
                queue.total_delivered + queue.queue_occupancy, abs=1e-9), link.name
        for flow in flows:
            assert flow.total_sent == pytest.approx(
                flow.total_acked + flow.total_lost + flow.inflight, abs=1e-9), flow.flow_id
        # Join sanity (fan_in): everything the leaves delivered either entered
        # the shared root queue, was tail-dropped at its full buffer, or is
        # still propagating towards it in the transit stage.
        if spec == "fan_in(3)":
            root = topo.bottleneck.queue
            leaf_delivered = sum(link.queue.total_delivered
                                 for link in topo.ordered_links
                                 if link.name != topo.bottleneck_name)
            in_transit_to_root = sim.in_transit_occupancy().get(topo.bottleneck_name, 0.0)
            assert leaf_delivered == pytest.approx(
                root.total_enqueued + root.total_dropped + in_transit_to_root, abs=1e-9)

    def test_fifo_drains_interleaved_flows_in_arrival_order(self):
        link = BottleneckLink(constant_trace(12.0), min_rtt=0.05, buffer_packets=100.0)
        order = [(0, 3.0, 0.00), (1, 2.0, 0.00), (0, 4.0, 0.01), (2, 1.0, 0.02)]
        for flow_id, packets, t in order:
            link.enqueue(flow_id, packets, t)
        drained = []
        t = 0.03
        while link.queue_occupancy > 1e-9:
            for chunk in link.drain(t, 0.2):
                drained.append((chunk.flow_id, chunk.packets))
            t += 0.2
        # Flow ids come back in exactly the interleaved arrival order.
        assert [fid for fid, _ in drained[:4]] == [0, 1, 0, 2]
        totals = {}
        for fid, packets in drained:
            totals[fid] = totals.get(fid, 0.0) + packets
        assert totals == {0: pytest.approx(7.0), 1: pytest.approx(2.0), 2: pytest.approx(1.0)}

    def test_fifo_queuing_delays_monotone_within_tick(self):
        link = BottleneckLink(constant_trace(6.0), min_rtt=0.05, buffer_packets=50.0)
        for t in (0.0, 0.1, 0.2):
            link.enqueue(0, 5.0, t)
        chunks = link.drain(1.0, 10.0)
        delays = [chunk.queuing_delay for chunk in chunks]
        assert delays == sorted(delays, reverse=True)  # oldest (longest-waiting) first
        assert delays[0] == pytest.approx(1.0)

    def test_carried_delay_accumulates_across_hops(self):
        downstream = BottleneckLink(constant_trace(12.0), min_rtt=0.05, buffer_packets=50.0)
        downstream.enqueue(0, 2.0, 1.0, carried_delay=0.25)
        (chunk,) = downstream.drain(1.5, 10.0)
        assert chunk.queuing_delay == pytest.approx(0.25 + 0.5)


class TestStochasticLoss:
    def test_deterministic_mode_thins_exactly(self):
        link = BottleneckLink(constant_trace(), min_rtt=0.05, buffer_packets=100.0,
                              random_loss_rate=0.1, seed=3)
        _, _, random_lost = link.enqueue(0, 10.0, 0.0)
        assert random_lost == pytest.approx(1.0)

    def test_stochastic_mode_matches_rate_in_expectation(self):
        link = BottleneckLink(constant_trace(), min_rtt=0.05, buffer_packets=10_000.0,
                              random_loss_rate=0.1, stochastic_loss=True, seed=3)
        total_offered = 0.0
        total_lost = 0.0
        for i in range(2000):
            _, _, random_lost = link.enqueue(0, 5.5, 0.01 * i)
            total_offered += 5.5
            total_lost += random_lost
            link.drain(0.01 * i, 0.01)
        assert total_lost / total_offered == pytest.approx(0.1, rel=0.15)

    def test_stochastic_mode_reproducible_per_seed(self):
        def sequence(seed):
            link = BottleneckLink(constant_trace(), min_rtt=0.05, buffer_packets=100.0,
                                  random_loss_rate=0.2, stochastic_loss=True, seed=seed)
            return tuple(link.enqueue(0, 3.7, 0.01 * i)[2] for i in range(40))

        assert sequence(5) == sequence(5)
        assert sequence(5) != sequence(6)

    def test_stochastic_runs_shard_identically(self):
        # The end-to-end reproducibility satellite: hop seeds derive from the
        # task coordinates, so a stochastic-loss grid is bit-identical whether
        # it runs serially or across a process pool.
        from repro.harness.evaluate import EvaluationSettings
        from repro.harness.parallel import ExperimentTask, ParallelRunner

        trace = BandwidthTrace.constant(24.0, duration=30.0, name="const-24")
        tasks = []
        for scheme in ("cubic", "vegas"):
            for topology in ("single_bottleneck", "chain(2)"):
                settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                              random_loss_rate=0.02, stochastic_loss=True,
                                              topology=topology, seed=7)
                tasks.append(ExperimentTask(scheme=scheme, trace=trace, settings=settings))
        serial = ParallelRunner(1).run(tasks)
        parallel = ParallelRunner(2).run(tasks)
        assert serial.rows == parallel.rows
        assert all(row["loss_rate"] > 0.0 for row in serial.rows)
