"""Tests for the actor pool (multi-environment experience collection)."""

import numpy as np
import pytest

from repro.orca.env import OrcaEnvConfig, OrcaNetworkEnv
from repro.rl.actors import ActorPool
from repro.rl.td3 import TD3Agent, TD3Config


def make_pool(n_envs=3, reward_hook=None, episode_intervals=4):
    envs = [OrcaNetworkEnv(OrcaEnvConfig(seed=100 + i, episode_intervals=episode_intervals))
            for i in range(n_envs)]
    obs_dim = envs[0].state_dim
    agent = TD3Agent(TD3Config(state_dim=obs_dim, hidden_sizes=(16, 8), warmup_steps=8,
                               batch_size=8, seed=0))
    return ActorPool(envs, agent, reward_hook=reward_hook), agent


def test_empty_pool_rejected():
    agent = TD3Agent(TD3Config(state_dim=4, hidden_sizes=(8,), seed=0))
    with pytest.raises(ValueError):
        ActorPool([], agent)


def test_collect_requires_positive_steps():
    pool, _ = make_pool()
    with pytest.raises(ValueError):
        pool.collect(steps=0)


def test_round_robin_distributes_steps():
    pool, _ = make_pool(n_envs=3)
    pool.collect(steps=9)
    assert [actor.steps for actor in pool.actors] == [3, 3, 3]
    assert pool.total_steps == 9


def test_transitions_reach_replay_buffer():
    pool, agent = make_pool(n_envs=2)
    pool.collect(steps=10)
    assert len(agent.replay) == 10


def test_episode_boundaries_reset_actors():
    pool, _ = make_pool(n_envs=2, episode_intervals=3)
    pool.collect(steps=12)
    assert pool.total_episodes >= 2
    for actor in pool.actors:
        assert actor.episodes_completed >= 1
        assert actor.observation is not None


def test_reward_hook_rewrites_stored_reward():
    calls = []

    def hook(reward, state, info):
        calls.append(reward)
        return 42.0

    pool, agent = make_pool(n_envs=2, reward_hook=hook)
    pool.collect(steps=6)
    assert len(calls) == 6
    batch = agent.replay.sample(6)
    assert np.allclose(batch["rewards"], 42.0)


def test_records_and_summary():
    pool, _ = make_pool(n_envs=2)
    records = pool.collect(steps=4)
    assert len(records) == 4
    assert {"reward", "stored_reward", "done", "actor"} <= set(records[0])
    summary = pool.summary()
    assert summary["n_actors"] == 2.0
    assert summary["total_steps"] == 4.0
    assert np.isfinite(summary["mean_recent_reward"])


def test_training_through_pool_updates_agent():
    pool, agent = make_pool(n_envs=4)
    for _ in range(40):
        pool.collect(steps=1)
        agent.update()
    assert agent.total_updates > 0
    assert pool.mean_recent_reward() != 0.0
