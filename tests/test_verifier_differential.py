"""Differential tests: the batched certification engine vs the scalar reference.

``Verifier.certify`` propagates all N components as one batched box;
``Verifier.certify_reference`` retains the original one-component-at-a-time
path.  Over randomized (MLP shape, property, decision context) draws the two
must produce numerically identical certificates — same proofs, same Eq. 6
feedback, same component bounds — to within ``ATOL`` (the only permitted
difference is matmul summation order).
"""

import numpy as np
import pytest

from repro.core.properties import (
    all_properties,
    property_p1,
    property_p2,
    property_p3,
    property_p4_case_i,
    property_p4_case_ii,
    property_p5,
)
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig

ATOL = 1e-12
N_SEEDS = 24

PROPERTY_FACTORIES = (
    property_p1,
    property_p2,
    property_p3,
    property_p4_case_i,
    property_p4_case_ii,
    property_p5,
)


def random_setup(seed):
    """A random (actor, decision context, partition count) draw."""
    rng = np.random.default_rng(seed)
    obs_config = ObservationConfig()
    depth = int(rng.integers(1, 4))
    hidden_sizes = tuple(int(rng.integers(4, 33)) for _ in range(depth))
    actor = make_actor(obs_config.state_dim, hidden_sizes=hidden_sizes, rng=rng)
    state = rng.uniform(0.0, 1.0, obs_config.state_dim)
    cwnd_tcp = float(rng.uniform(5.0, 200.0))
    cwnd_prev = float(rng.uniform(5.0, 200.0))
    n_components = int(rng.integers(1, 13))
    return obs_config, actor, state, cwnd_tcp, cwnd_prev, n_components


def assert_certificates_identical(batched, reference):
    assert batched.property_name == reference.property_name
    assert batched.applicable == reference.applicable
    assert batched.allowed_lo == reference.allowed_lo
    assert batched.allowed_hi == reference.allowed_hi
    assert batched.n_components == reference.n_components
    for got, expected in zip(batched.components, reference.components):
        assert got.index == expected.index
        assert got.satisfied == expected.satisfied
        np.testing.assert_allclose(got.input_lo, expected.input_lo, rtol=0.0, atol=ATOL)
        np.testing.assert_allclose(got.input_hi, expected.input_hi, rtol=0.0, atol=ATOL)
        assert got.output_lo == pytest.approx(expected.output_lo, rel=0.0, abs=ATOL)
        assert got.output_hi == pytest.approx(expected.output_hi, rel=0.0, abs=ATOL)
        assert got.feedback == pytest.approx(expected.feedback, rel=0.0, abs=ATOL)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_certify_differential(seed):
    """Batched certify == scalar certify_reference for every property."""
    obs_config, actor, state, cwnd_tcp, cwnd_prev, n = random_setup(seed)
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=n))
    for factory in PROPERTY_FACTORIES:
        prop = factory()
        batched = verifier.certify(prop, state, cwnd_tcp, cwnd_prev)
        reference = verifier.certify_reference(prop, state, cwnd_tcp, cwnd_prev)
        assert_certificates_identical(batched, reference)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_certify_all_and_feedback_differential(seed):
    obs_config, actor, state, cwnd_tcp, cwnd_prev, n = random_setup(seed + 1000)
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=n))
    properties = all_properties()

    batched = verifier.certify_all(properties, state, cwnd_tcp, cwnd_prev)
    reference = verifier.certify_all_reference(properties, state, cwnd_tcp, cwnd_prev)
    assert set(batched) == set(reference)
    for name in batched:
        assert_certificates_identical(batched[name], reference[name])

    feedback = verifier.verifier_feedback(properties, state, cwnd_tcp, cwnd_prev)
    feedback_reference = verifier.verifier_feedback_reference(properties, state, cwnd_tcp, cwnd_prev)
    assert feedback == pytest.approx(feedback_reference, rel=0.0, abs=ATOL)


@pytest.mark.parametrize("seed", range(4))
def test_certify_differential_at_evaluation_scale(seed):
    """The paper's evaluation setting: N=50 components."""
    obs_config, actor, state, cwnd_tcp, cwnd_prev, _ = random_setup(seed + 2000)
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=50))
    for factory in (property_p1, property_p5):
        prop = factory()
        assert_certificates_identical(
            verifier.certify(prop, state, cwnd_tcp, cwnd_prev),
            verifier.certify_reference(prop, state, cwnd_tcp, cwnd_prev),
        )


def test_certify_differential_with_applicability_gating():
    """Both paths agree on non-applicable certificates when gating is on."""
    obs_config, actor, state, cwnd_tcp, cwnd_prev, _ = random_setup(3000)
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=4, check_applicability=True))
    gated_state = state.copy()
    for idx in verifier.observer.feature_indices("dcwnd"):
        gated_state[idx] = 0.5  # history of increases gates the dcwnd<=0 properties
    for factory in (property_p1, property_p2):
        batched = verifier.certify(factory(), gated_state, cwnd_tcp, cwnd_prev)
        reference = verifier.certify_reference(factory(), gated_state, cwnd_tcp, cwnd_prev)
        assert_certificates_identical(batched, reference)
