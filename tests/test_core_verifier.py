"""Tests for the IBP verifier: certification soundness and aggregation."""

import numpy as np
import pytest

from repro.core.properties import (
    deep_buffer_properties,
    property_p1,
    property_p2,
    property_p5,
    shallow_buffer_properties,
)
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.agent import cwnd_from_action
from repro.orca.observations import ObservationConfig


@pytest.fixture
def obs_config():
    return ObservationConfig()


@pytest.fixture
def actor(obs_config):
    return make_actor(obs_config.state_dim, hidden_sizes=(16, 8), rng=np.random.default_rng(7))


@pytest.fixture
def verifier(actor, obs_config):
    return Verifier(actor, obs_config, VerifierConfig(n_components=5))


@pytest.fixture
def state(obs_config):
    rng = np.random.default_rng(3)
    return np.clip(rng.uniform(0.0, 1.0, size=obs_config.state_dim), 0.0, 1.0)


class TestConfig:
    def test_invalid_components(self):
        with pytest.raises(ValueError):
            VerifierConfig(n_components=0)

    def test_invalid_context(self, verifier, state):
        with pytest.raises(ValueError):
            verifier.certify(property_p1(), state, cwnd_tcp=0.0, cwnd_prev=10.0)


class TestCertification:
    def test_certificate_structure(self, verifier, state):
        cert = verifier.certify(property_p1(), state, cwnd_tcp=20.0, cwnd_prev=20.0, n_components=7)
        assert cert.property_name == "P1"
        assert cert.n_components == 7
        assert 0.0 <= cert.feedback <= 1.0
        assert 0.0 <= cert.satisfied_fraction <= 1.0
        bounds = cert.output_bounds()
        assert bounds.shape == (7, 2)
        assert np.all(bounds[:, 0] <= bounds[:, 1] + 1e-12)

    def test_components_cover_delay_dimension(self, verifier, state):
        prop = property_p1()
        cert = verifier.certify(prop, state, cwnd_tcp=20.0, cwnd_prev=20.0, n_components=4)
        observer = verifier.observer
        delay_dim = observer.feature_indices("delay")[0]
        lows = sorted(c.input_lo[delay_dim] for c in cert.components)
        highs = sorted(c.input_hi[delay_dim] for c in cert.components)
        assert lows[0] == pytest.approx(0.0)
        assert highs[-1] == pytest.approx(prop.delay_range[1])

    def test_soundness_against_concrete_samples(self, verifier, actor, state):
        """Concrete Δcwnd for points in each component lies inside its bounds."""
        prop = property_p1()
        cwnd_tcp, cwnd_prev = 25.0, 22.0
        cert = verifier.certify(prop, state, cwnd_tcp, cwnd_prev, n_components=3)
        rng = np.random.default_rng(11)
        for component in cert.components:
            for _ in range(5):
                point = component.input_lo + rng.random(state.shape[0]) * (
                    component.input_hi - component.input_lo)
                action = float(actor.forward(point.reshape(1, -1))[0, 0])
                delta = cwnd_from_action(action, cwnd_tcp) - cwnd_prev
                assert component.output_lo - 1e-6 <= delta <= component.output_hi + 1e-6

    def test_finer_partition_gives_tighter_output_bounds(self, verifier, state):
        """The hull of the fine-partition outputs lies inside the coarse bounds."""
        prop = property_p2()
        coarse = verifier.certify(prop, state, 20.0, 20.0, n_components=1)
        fine = verifier.certify(prop, state, 20.0, 20.0, n_components=10)
        coarse_lo = coarse.components[0].output_lo
        coarse_hi = coarse.components[0].output_hi
        fine_bounds = fine.output_bounds()
        assert fine_bounds[:, 0].min() >= coarse_lo - 1e-9
        assert fine_bounds[:, 1].max() <= coarse_hi + 1e-9

    def test_robustness_property_uses_reference_cwnd(self, verifier, actor, state):
        prop = property_p5(mu=0.05, epsilon=0.01)
        cert = verifier.certify(prop, state, cwnd_tcp=30.0, cwnd_prev=30.0, n_components=5)
        assert cert.n_components == 5
        # The allowed region is the +-epsilon band.
        assert cert.allowed_lo == pytest.approx(-0.01)
        assert cert.allowed_hi == pytest.approx(0.01)

    def test_zero_noise_state_is_trivially_robust(self, verifier, obs_config):
        # With an all-zero state the multiplicative perturbation has no effect,
        # so the certified change fraction must be exactly zero.
        state = np.zeros(obs_config.state_dim)
        cert = verifier.certify(property_p5(), state, cwnd_tcp=20.0, cwnd_prev=20.0)
        assert cert.proof
        assert cert.feedback == pytest.approx(1.0)

    def test_applicability_gating_optional(self, actor, obs_config, state):
        gated = Verifier(actor, obs_config, VerifierConfig(n_components=3, check_applicability=True))
        state_increasing = state.copy()
        observer = gated.observer
        for idx in observer.feature_indices("dcwnd"):
            state_increasing[idx] = 0.5  # history of increases
        cert = gated.certify(property_p1(), state_increasing, 20.0, 20.0)
        assert not cert.applicable
        assert cert.feedback == pytest.approx(1.0)

    def test_concrete_action_and_cwnd(self, verifier, state):
        action = verifier.concrete_action(state)
        assert -1.0 <= action <= 1.0
        cwnd = verifier.concrete_cwnd(state, cwnd_tcp=10.0)
        assert cwnd == pytest.approx(cwnd_from_action(action, 10.0))


class TestAggregation:
    def test_verifier_feedback_weighted_average(self, verifier, state):
        props = shallow_buffer_properties()
        value = verifier.verifier_feedback(props, state, 20.0, 20.0)
        per_prop = [verifier.certify(p, state, 20.0, 20.0).feedback for p in props]
        assert value == pytest.approx(np.mean(per_prop))

    def test_verifier_feedback_respects_weights(self, verifier, state):
        props = deep_buffer_properties().reweighted({"P3": 3.0})
        value = verifier.verifier_feedback(props, state, 20.0, 20.0)
        certificates = {p.name: verifier.certify(p, state, 20.0, 20.0).feedback for p in props}
        expected = (3.0 * certificates["P3"] + certificates["P4i"] + certificates["P4ii"]) / 5.0
        assert value == pytest.approx(expected)

    def test_empty_property_list_rejected(self, verifier, state):
        with pytest.raises(ValueError):
            verifier.verifier_feedback([], state, 20.0, 20.0)

    def test_certify_all_returns_per_property(self, verifier, state):
        certificates = verifier.certify_all(shallow_buffer_properties(), state, 20.0, 20.0)
        assert set(certificates) == {"P1", "P2"}


class TestSemantics:
    def test_always_increase_policy_satisfies_p1_violates_p2(self, obs_config, state):
        """A policy pinned at a=+1 always grows cwnd: P1 holds, P2 fails."""
        actor = make_actor(obs_config.state_dim, hidden_sizes=(8,), rng=np.random.default_rng(0))
        # Force a large positive bias on the output layer so tanh saturates at +1.
        output_dense = actor.layers[-2]
        output_dense.weight[...] = 0.0
        output_dense.bias[...] = 10.0
        verifier = Verifier(actor, obs_config, VerifierConfig(n_components=4))
        cert_p1 = verifier.certify(property_p1(), state, cwnd_tcp=20.0, cwnd_prev=20.0)
        cert_p2 = verifier.certify(property_p2(), state, cwnd_tcp=20.0, cwnd_prev=20.0)
        assert cert_p1.proof
        assert cert_p1.feedback == pytest.approx(1.0)
        assert not cert_p2.proof
        assert cert_p2.feedback == pytest.approx(0.0, abs=1e-6)

    def test_always_decrease_policy_satisfies_p2_violates_p1(self, obs_config, state):
        actor = make_actor(obs_config.state_dim, hidden_sizes=(8,), rng=np.random.default_rng(0))
        output_dense = actor.layers[-2]
        output_dense.weight[...] = 0.0
        output_dense.bias[...] = -10.0
        verifier = Verifier(actor, obs_config, VerifierConfig(n_components=4))
        assert verifier.certify(property_p2(), state, 20.0, 20.0).proof
        assert not verifier.certify(property_p1(), state, 20.0, 20.0).proof

    def test_constant_policy_is_perfectly_robust(self, obs_config, state):
        actor = make_actor(obs_config.state_dim, hidden_sizes=(8,), rng=np.random.default_rng(0))
        output_dense = actor.layers[-2]
        output_dense.weight[...] = 0.0
        output_dense.bias[...] = 0.3
        verifier = Verifier(actor, obs_config, VerifierConfig(n_components=4))
        cert = verifier.certify(property_p5(), state, cwnd_tcp=20.0, cwnd_prev=20.0)
        assert cert.proof
