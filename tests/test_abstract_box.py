"""Tests for the box abstract domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.box import Box
from repro.abstract.interval import Interval


class TestConstruction:
    def test_point_box(self):
        box = Box.point([1.0, 2.0])
        assert np.allclose(box.deviation, 0.0)
        assert box.contains([1.0, 2.0])

    def test_negative_deviation_rejected(self):
        with pytest.raises(ValueError):
            Box([0.0], [-1.0])

    def test_from_bounds_round_trip(self):
        box = Box.from_bounds([0.0, -1.0], [2.0, 3.0])
        assert np.allclose(box.lo, [0.0, -1.0])
        assert np.allclose(box.hi, [2.0, 3.0])

    def test_interval_round_trip(self):
        iv = Interval([0.0, 1.0], [2.0, 5.0])
        box = Box.from_interval(iv)
        back = box.to_interval()
        assert np.allclose(back.lo, iv.lo)
        assert np.allclose(back.hi, iv.hi)

    def test_abstraction_function_covers_states(self):
        states = [np.array([0.0, 1.0]), np.array([2.0, -1.0]), np.array([1.0, 0.5])]
        box = Box.abstraction(states)
        for state in states:
            assert box.contains(state)

    def test_abstraction_empty_raises(self):
        with pytest.raises(ValueError):
            Box.abstraction([])


class TestTransformers:
    def test_affine_exactness_on_point(self):
        box = Box.point([1.0, -1.0])
        weight = np.array([[2.0, 0.5], [1.0, -1.0]])
        bias = np.array([0.1, -0.2])
        result = box.affine(weight, bias)
        expected = weight @ np.array([1.0, -1.0]) + bias
        assert np.allclose(result.center, expected)
        assert np.allclose(result.deviation, 0.0)

    def test_affine_deviation_uses_abs_weight(self):
        box = Box([0.0, 0.0], [1.0, 2.0])
        weight = np.array([[1.0, -1.0]])
        result = box.affine(weight)
        assert result.deviation[0] == pytest.approx(3.0)

    def test_relu_matches_paper_formula(self):
        box = Box([0.0], [2.0])  # concretization [-2, 2]
        result = box.relu()
        assert result.lo[0] == pytest.approx(0.0)
        assert result.hi[0] == pytest.approx(2.0)

    def test_relu_all_negative(self):
        result = Box([-3.0], [1.0]).relu()
        assert result.lo[0] == pytest.approx(0.0)
        assert result.hi[0] == pytest.approx(0.0)

    def test_tanh_bounds(self):
        result = Box([0.0], [1.0]).tanh()
        assert result.lo[0] == pytest.approx(np.tanh(-1.0))
        assert result.hi[0] == pytest.approx(np.tanh(1.0))

    def test_add_elements(self):
        box = Box.point([1.0, 2.0, 3.0])
        result = box.add_elements(target=0, lhs=1, rhs=2)
        assert result.center[0] == pytest.approx(5.0)
        assert result.center[1] == pytest.approx(2.0)

    def test_scale_negative_factor(self):
        box = Box([1.0], [0.5])
        result = box.scale(-2.0)
        assert result.lo[0] == pytest.approx(-3.0)
        assert result.hi[0] == pytest.approx(-1.0)

    def test_shift(self):
        box = Box([1.0], [0.5])
        result = box.shift(2.0)
        assert result.center[0] == pytest.approx(3.0)
        assert result.deviation[0] == pytest.approx(0.5)

    def test_join_is_upper_bound(self):
        a = Box.from_bounds([0.0], [1.0])
        b = Box.from_bounds([2.0], [3.0])
        joined = a.join(b)
        assert joined.contains_box(a)
        assert joined.contains_box(b)


class TestSplit:
    def test_split_covers_volume(self):
        box = Box.from_bounds([0.0, 0.0], [1.0, 1.0])
        pieces = box.split(4, dims=[0])
        assert len(pieces) == 4
        total = sum(piece.to_interval().width[0] for piece in pieces)
        assert total == pytest.approx(1.0)

    def test_split_scalar_box(self):
        box = Box.from_bounds(np.array(0.0), np.array(1.0))
        pieces = box.split(2)
        assert len(pieces) == 2


# ---------------------------------------------------------------------- #
# Soundness: for random points in the box, the concrete image of each
# transformer lies inside the abstract image.
# ---------------------------------------------------------------------- #
coord = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def box_and_point(draw, dim=3):
    center = np.array([draw(coord) for _ in range(dim)])
    deviation = np.array([abs(draw(coord)) / 2.0 for _ in range(dim)])
    box = Box(center, deviation)
    t = np.array([draw(st.floats(0.0, 1.0)) for _ in range(dim)])
    point = box.lo + t * (box.hi - box.lo)
    return box, point


@given(box_and_point())
@settings(max_examples=50, deadline=None)
def test_affine_soundness(data):
    box, point = data
    weight = np.array([[1.0, -2.0, 0.5], [0.0, 3.0, -1.0]])
    bias = np.array([0.5, -0.5])
    abstract = box.affine(weight, bias)
    concrete = weight @ point + bias
    assert abstract.contains(concrete, tol=1e-6)


@given(box_and_point())
@settings(max_examples=50, deadline=None)
def test_relu_soundness(data):
    box, point = data
    assert box.relu().contains(np.maximum(point, 0.0), tol=1e-9)


@given(box_and_point())
@settings(max_examples=50, deadline=None)
def test_tanh_soundness(data):
    box, point = data
    assert box.tanh().contains(np.tanh(point), tol=1e-9)
