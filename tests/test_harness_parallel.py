"""Tests for the ParallelRunner: determinism, sharding, merged reporting."""

import numpy as np
import pytest

from repro.harness.evaluate import EvaluationSettings, run_schemes_sharded
from repro.harness.parallel import (
    ExperimentTask,
    GridResult,
    ParallelRunner,
    derive_seed,
    run_task,
)
from repro.traces.trace import BandwidthTrace


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def make_tasks(duration=2.0, seed=7):
    trace = BandwidthTrace.constant(12.0, duration=30.0, name="const-12")
    settings = EvaluationSettings(duration=duration, buffer_bdp=1.0, seed=seed)
    return [
        ExperimentTask(scheme=scheme, trace=trace, settings=settings, tags={"cell": index})
        for index, scheme in enumerate(("cubic", "vegas", "newreno"))
    ]


class TestRunnerBasics:
    def test_map_preserves_order_serial_and_parallel(self):
        items = list(range(10))
        expected = [x * x for x in items]
        assert ParallelRunner(1).map(_square, items) == expected
        assert ParallelRunner(2).map(_square, items) == expected

    def test_map_unpicklable_callable_falls_back_to_serial(self):
        items = [1, 2, 3]
        assert ParallelRunner(2).map(lambda x: x + 1, items) == [2, 3, 4]

    def test_task_exceptions_propagate_instead_of_serial_retry(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(1).map(_boom, [1, 2])
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(2).map(_boom, [1, 2])

    def test_n_jobs_resolution(self, monkeypatch):
        assert ParallelRunner(3).n_jobs == 3
        assert ParallelRunner(0).n_jobs >= 1  # one worker per CPU
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert ParallelRunner().n_jobs == 5

    def test_map_on_result_streams_in_item_order(self):
        for n_jobs in (1, 2):
            seen = []
            out = ParallelRunner(n_jobs).map(
                _square, [1, 2, 3],
                on_result=lambda index, item, result: seen.append((index, item, result)))
            assert out == [1, 4, 9]
            assert seen == [(0, 1, 1), (1, 2, 4), (2, 3, 9)]

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "trace-a", "cubic") == derive_seed(1, "trace-a", "cubic")
        seeds = {derive_seed(1, trace, scheme)
                 for trace in ("a", "b", "c") for scheme in ("cubic", "vegas")}
        assert len(seeds) == 6
        assert all(0 <= seed < 2 ** 31 - 1 for seed in seeds)


class TestExperimentTask:
    def test_certify_requires_model(self):
        task = make_tasks()[0]
        with pytest.raises(ValueError):
            ExperimentTask(scheme="cubic", trace=task.trace, settings=task.settings, certify=True)

    def test_unknown_property_family_rejected(self):
        task = make_tasks()[0]
        with pytest.raises(ValueError):
            ExperimentTask(scheme="canopy", trace=task.trace, settings=task.settings,
                           model_kind="canopy-shallow", certify=True, property_family="nope")

    def test_model_topologies_requires_model(self):
        task = make_tasks()[0]
        with pytest.raises(ValueError):
            ExperimentTask(scheme="cubic", trace=task.trace, settings=task.settings,
                           model_topologies=("chain(2)",))

    def test_model_topologies_normalized_to_string_tuple(self):
        task = make_tasks()[0]
        with_catalog = ExperimentTask(scheme="canopy", trace=task.trace, settings=task.settings,
                                      model_kind="canopy-shallow",
                                      model_topologies=["single_bottleneck", "chain(2)"])
        assert with_catalog.model_topologies == ("single_bottleneck", "chain(2)")

    def test_run_task_classical_row(self):
        row = run_task(make_tasks()[0])
        assert row["scheme"] == "cubic"
        assert row["trace"] == "const-12"
        assert row["cell"] == 0
        assert 0.0 < row["utilization"] <= 1.5


class TestGridDeterminism:
    def test_serial_and_parallel_grids_identical(self):
        tasks = make_tasks()
        serial = ParallelRunner(1).run(tasks)
        parallel = ParallelRunner(2).run(tasks)
        assert serial.n_tasks == parallel.n_tasks == len(tasks)
        assert serial.rows == parallel.rows
        assert [row["cell"] for row in serial.rows] == [0, 1, 2]
        assert serial.wall_clock_s > 0.0

    def test_run_schemes_sharded_matches_manual_grid(self):
        tasks = make_tasks()
        trace = tasks[0].trace
        settings = tasks[0].settings
        grid = run_schemes_sharded({"cubic": None, "vegas": None}, [trace], settings, n_jobs=1)
        assert [row["scheme"] for row in grid.rows] == ["cubic", "vegas"]
        direct = run_task(ExperimentTask(scheme="cubic", trace=trace, settings=settings))
        assert grid.rows[0]["utilization"] == direct["utilization"]

    def test_run_schemes_sharded_seed_replicates(self):
        tasks = make_tasks()
        trace = tasks[0].trace
        settings = tasks[0].settings
        grid = run_schemes_sharded({"cubic": None}, [trace], settings, n_jobs=1, n_seeds=3)
        assert grid.n_tasks == 3
        assert [row["replicate"] for row in grid.rows] == [0, 1, 2]
        # Replicates get distinct derived seeds, deterministically.
        assert [row["seed"] for row in grid.rows] == [
            derive_seed(settings.seed, trace.name, "cubic", replicate) for replicate in range(3)
        ]
        assert len(set(row["seed"] for row in grid.rows)) == 3
        again = run_schemes_sharded({"cubic": None}, [trace], settings, n_jobs=1, n_seeds=3)
        assert again.rows == grid.rows
        with pytest.raises(ValueError):
            run_schemes_sharded({"cubic": None}, [trace], settings, n_seeds=0)


class TestGridResultReporting:
    def make_grid(self):
        rows = [
            {"scheme": "a", "kind": "x", "metric": 1.0},
            {"scheme": "a", "kind": "x", "metric": 3.0},
            {"scheme": "b", "kind": "x", "metric": 5.0},
        ]
        return GridResult(rows=rows, wall_clock_s=1.0, n_tasks=3, n_jobs=1)

    def test_select(self):
        grid = self.make_grid()
        assert len(grid.select(scheme="a")) == 2
        assert grid.select(scheme="b", kind="x")[0]["metric"] == 5.0
        assert grid.select(scheme="missing") == []

    def test_select_unknown_column_raises_with_valid_names(self):
        # A typo'd axis name must not silently select nothing.
        grid = self.make_grid()
        with pytest.raises(ValueError) as excinfo:
            grid.select(shceme="a")
        message = str(excinfo.value)
        assert "shceme" in message and "scheme" in message and "kind" in message
        # Empty grids have no columns to check against.
        from repro.harness.parallel import GridResult as GR
        assert GR(rows=[], wall_clock_s=0.0, n_tasks=0, n_jobs=1).select(anything=1) == []

    def test_aggregate_unknown_column_raises(self):
        grid = self.make_grid()
        with pytest.raises(ValueError, match="unknown grid column"):
            grid.aggregate(group_by=["schem"], metrics=["metric"])
        with pytest.raises(ValueError, match="unknown grid column"):
            grid.aggregate(group_by=["scheme"], metrics=["metrik"])

    def test_aggregate(self):
        grid = self.make_grid()
        aggregated = grid.aggregate(group_by=["scheme"], metrics=["metric"])
        assert aggregated[0] == {
            "scheme": "a",
            "metric_mean": 2.0,
            "metric_std": pytest.approx(np.std([1.0, 3.0])),
            "n_cells": 2,
        }
        assert aggregated[1]["scheme"] == "b"
        assert aggregated[1]["n_cells"] == 1


class TestDeclarativeMonitorSpec:
    def test_monitor_spec_requires_model_and_family(self):
        task = make_tasks()[0]
        with pytest.raises(ValueError, match="learned model_kind"):
            ExperimentTask(scheme="cubic", trace=task.trace, settings=task.settings,
                           monitor_threshold=0.5, monitor_family="shallow")
        with pytest.raises(ValueError, match="monitor_family"):
            ExperimentTask(scheme="canopy", trace=task.trace, settings=task.settings,
                           model_kind="canopy-shallow", monitor_threshold=0.5)
        with pytest.raises(ValueError, match="unknown property family"):
            ExperimentTask(scheme="canopy", trace=task.trace, settings=task.settings,
                           model_kind="canopy-shallow", monitor_threshold=0.5,
                           monitor_family="nope")
        with pytest.raises(ValueError, match="monitor_threshold"):
            ExperimentTask(scheme="canopy", trace=task.trace, settings=task.settings,
                           model_kind="canopy-shallow", monitor_threshold=1.5,
                           monitor_family="shallow")

    @pytest.mark.slow
    def test_monitor_spec_reports_fallback_columns(self):
        trace = BandwidthTrace.constant(24.0, duration=30.0, name="const-24")
        settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0, seed=7)
        task = ExperimentTask(
            scheme="canopy", trace=trace, settings=settings,
            model_kind="canopy-shallow", training_steps=40, model_seed=31,
            monitor_threshold=0.8, monitor_family="shallow", monitor_components=4,
        )
        row = run_task(task)
        assert 0.0 <= row["fallback_fraction"] <= 1.0
        assert 0.0 <= row["mean_qc"] <= 1.0
        assert row["topology"] == "single_bottleneck"
        # Record-only mode (threshold 0.0) never vetoes the learned action.
        baseline = run_task(ExperimentTask(
            scheme="canopy", trace=trace, settings=settings,
            model_kind="canopy-shallow", training_steps=40, model_seed=31,
            monitor_threshold=0.0, monitor_family="shallow", monitor_components=4,
        ))
        assert baseline["fallback_fraction"] == 0.0

    @pytest.mark.slow
    def test_monitor_grid_rows_identical_serial_and_parallel(self):
        from repro.harness.models import get_trained_model

        get_trained_model("canopy-shallow", training_steps=40, seed=31)
        trace = BandwidthTrace.constant(24.0, duration=30.0, name="const-24")
        settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0, seed=7)
        tasks = [
            ExperimentTask(scheme="canopy", trace=trace, settings=settings,
                           model_kind="canopy-shallow", training_steps=40, model_seed=31,
                           monitor_threshold=threshold, monitor_family="shallow",
                           monitor_components=4, tags={"threshold": threshold})
            for threshold in (0.0, 0.5, 0.8)
        ]
        serial = ParallelRunner(1).run(tasks)
        parallel = ParallelRunner(2).run(tasks)
        assert serial.rows == parallel.rows


class TestShardedSeedReproducibility:
    def test_random_loss_rows_identical_serial_and_parallel(self):
        # Per-hop RNG seeds derive from the task coordinates, so sharding the
        # grid over a pool cannot perturb random-loss runs.
        trace = BandwidthTrace.constant(24.0, duration=30.0, name="const-24")
        settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                      random_loss_rate=0.02, seed=7)
        tasks = [ExperimentTask(scheme=scheme, trace=trace, settings=settings)
                 for scheme in ("cubic", "vegas", "newreno", "bbr")]
        serial = ParallelRunner(1).run(tasks)
        parallel = ParallelRunner(2).run(tasks)
        assert serial.rows == parallel.rows
        assert all(row["loss_rate"] > 0.0 for row in serial.rows)

    def test_topology_tasks_shard_identically(self):
        trace = BandwidthTrace.constant(24.0, duration=30.0, name="const-24")
        tasks = []
        for topology in ("chain(2)", "parking_lot(2)", "dumbbell"):
            settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                          topology=topology, seed=7)
            tasks.append(ExperimentTask(scheme="cubic", trace=trace, settings=settings))
        serial = ParallelRunner(1).run(tasks)
        parallel = ParallelRunner(3).run(tasks)
        assert serial.rows == parallel.rows
        assert [row["topology"] for row in serial.rows] == [
            "chain(2)", "parking_lot(2)", "dumbbell"]

    def test_derive_seed_import_location_is_stable(self):
        # derive_seed moved to repro.seeding; the harness re-export must stay.
        from repro.seeding import derive_seed as canonical

        assert canonical is derive_seed
