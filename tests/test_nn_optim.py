"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Sequential
from repro.nn.losses import mse_loss
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        SGD([np.zeros(2)], [], lr=0.1)


def test_nonpositive_lr_rejected():
    with pytest.raises(ValueError):
        Adam([np.zeros(2)], [np.zeros(2)], lr=0.0)


def test_sgd_step_moves_against_gradient():
    param = np.array([1.0, -1.0])
    grad = np.array([0.5, -0.5])
    opt = SGD([param], [grad], lr=0.1)
    opt.step()
    assert np.allclose(param, [0.95, -0.95])


def test_sgd_momentum_accumulates():
    param = np.array([0.0])
    grad = np.array([1.0])
    opt = SGD([param], [grad], lr=0.1, momentum=0.9)
    opt.step()
    first = param.copy()
    opt.step()
    second_step = param - first
    assert abs(second_step[0]) > 0.1  # momentum makes the second step larger


def test_sgd_invalid_momentum():
    with pytest.raises(ValueError):
        SGD([np.zeros(1)], [np.zeros(1)], lr=0.1, momentum=1.5)


def test_adam_invalid_betas():
    with pytest.raises(ValueError):
        Adam([np.zeros(1)], [np.zeros(1)], lr=0.1, beta1=1.0)


def test_zero_grad_clears_buffers():
    param = np.array([1.0])
    grad = np.array([2.0])
    opt = SGD([param], [grad], lr=0.1)
    opt.zero_grad()
    assert np.all(grad == 0.0)


def test_adam_minimizes_quadratic():
    param = np.array([5.0, -3.0])
    grad = np.zeros_like(param)
    opt = Adam([param], [grad], lr=0.1)
    for _ in range(500):
        grad[...] = 2.0 * param  # d/dx of ||x||^2
        opt.step()
    assert np.allclose(param, 0.0, atol=1e-2)


def test_adam_trains_regression_model():
    rng = np.random.default_rng(0)
    true_weight = np.array([[2.0, -1.0]])
    x = rng.normal(size=(256, 2))
    y = x @ true_weight.T

    model = MLP(2, (), 1, rng=rng)  # a single linear layer
    opt = Adam.for_model(model, lr=0.05)
    initial_loss = None
    for _ in range(300):
        model.zero_grad()
        prediction = model.forward(x)
        loss, grad = mse_loss(prediction, y)
        if initial_loss is None:
            initial_loss = loss
        model.backward(grad)
        opt.step()
    assert loss < initial_loss * 0.01


def test_for_model_binds_model_buffers():
    model = Sequential([Dense(2, 2, rng=np.random.default_rng(1))])
    opt = Adam.for_model(model, lr=0.01)
    assert opt.parameters[0] is model.layers[0].weight
