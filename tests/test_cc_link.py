"""Tests for the bottleneck link: queueing, drops, drain, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.link import BottleneckLink
from repro.traces.trace import BandwidthTrace, mbps_to_pps


def make_link(mbps=12.0, min_rtt=0.05, buffer_bdp=1.0, **kwargs):
    return BottleneckLink(BandwidthTrace.constant(mbps), min_rtt=min_rtt, buffer_bdp=buffer_bdp, **kwargs)


class TestConstruction:
    def test_invalid_min_rtt(self):
        with pytest.raises(ValueError):
            make_link(min_rtt=0.0)

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            make_link(random_loss_rate=1.0)

    def test_buffer_from_bdp(self):
        link = make_link(mbps=12.0, min_rtt=0.1, buffer_bdp=2.0)
        assert link.buffer_packets == pytest.approx(2.0 * mbps_to_pps(12.0) * 0.1)

    def test_explicit_buffer_packets(self):
        link = BottleneckLink(BandwidthTrace.constant(12.0), min_rtt=0.1, buffer_packets=42.0)
        assert link.buffer_packets == pytest.approx(42.0)


class TestEnqueue:
    def test_accepts_up_to_buffer(self):
        link = BottleneckLink(BandwidthTrace.constant(12.0), min_rtt=0.1, buffer_packets=10.0)
        accepted, dropped, random_lost = link.enqueue(0, 8.0, now=0.0)
        assert accepted == pytest.approx(8.0)
        assert dropped == pytest.approx(0.0)
        assert random_lost == pytest.approx(0.0)

    def test_tail_drop_when_full(self):
        link = BottleneckLink(BandwidthTrace.constant(12.0), min_rtt=0.1, buffer_packets=10.0)
        link.enqueue(0, 10.0, now=0.0)
        accepted, dropped, _ = link.enqueue(0, 5.0, now=0.0)
        assert accepted == pytest.approx(0.0)
        assert dropped == pytest.approx(5.0)

    def test_zero_enqueue_is_noop(self):
        link = make_link()
        assert link.enqueue(0, 0.0, 0.0) == (0.0, 0.0, 0.0)

    def test_negative_enqueue_rejected(self):
        with pytest.raises(ValueError):
            make_link().enqueue(0, -1.0, 0.0)

    def test_random_loss_removes_fraction(self):
        link = BottleneckLink(BandwidthTrace.constant(12.0), min_rtt=0.1,
                              buffer_packets=100.0, random_loss_rate=0.1)
        accepted, dropped, random_lost = link.enqueue(0, 10.0, 0.0)
        assert random_lost == pytest.approx(1.0)
        assert accepted == pytest.approx(9.0)
        assert dropped == pytest.approx(0.0)


class TestDrain:
    def test_drain_respects_capacity(self):
        link = make_link(mbps=12.0, buffer_bdp=10.0)
        link.enqueue(0, 1000.0, 0.0)
        delivered = link.drain(0.0, dt=0.1)
        total = sum(chunk.packets for chunk in delivered)
        assert total == pytest.approx(mbps_to_pps(12.0) * 0.1, rel=1e-6)

    def test_drain_empty_queue(self):
        assert make_link().drain(0.0, 0.1) == []

    def test_drain_invalid_dt(self):
        with pytest.raises(ValueError):
            make_link().drain(0.0, 0.0)

    def test_fifo_order_across_flows(self):
        link = make_link(mbps=1.2, buffer_bdp=100.0)
        link.enqueue(0, 5.0, 0.0)
        link.enqueue(1, 5.0, 0.0)
        delivered = link.drain(0.0, dt=10.0)
        assert delivered[0].flow_id == 0
        assert delivered[-1].flow_id == 1

    def test_queuing_delay_reported(self):
        link = make_link(mbps=12.0, buffer_bdp=10.0)
        link.enqueue(0, 5.0, now=0.0)
        delivered = link.drain(now=0.5, dt=0.1)
        assert all(chunk.queuing_delay == pytest.approx(0.5) for chunk in delivered)

    def test_no_capacity_carryover_on_empty_queue(self):
        link = make_link(mbps=12.0)
        link.drain(0.0, dt=1.0)  # nothing queued; credit must not accumulate
        link.enqueue(0, 1000.0, 1.0)
        delivered = link.drain(1.0, dt=0.1)
        total = sum(chunk.packets for chunk in delivered)
        assert total <= mbps_to_pps(12.0) * 0.1 + 1e-6

    def test_expected_queuing_delay(self):
        link = make_link(mbps=12.0, buffer_bdp=10.0)
        link.enqueue(0, mbps_to_pps(12.0) * 0.2, 0.0)  # 200 ms worth of packets
        assert link.expected_queuing_delay(0.0) == pytest.approx(0.2, rel=1e-6)

    def test_reset_clears_state(self):
        link = make_link(buffer_bdp=10.0)
        link.enqueue(0, 5.0, 0.0)
        link.reset()
        assert link.queue_occupancy == 0.0
        assert link.total_enqueued == 0.0

    def test_per_flow_occupancy(self):
        link = make_link(buffer_bdp=10.0)
        link.enqueue(0, 3.0, 0.0)
        link.enqueue(1, 2.0, 0.0)
        occupancy = link.per_flow_occupancy()
        assert occupancy[0] == pytest.approx(3.0)
        assert occupancy[1] == pytest.approx(2.0)


@given(st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20), st.floats(1.0, 100.0))
@settings(max_examples=40, deadline=None)
def test_packet_conservation(offered, buffer_packets):
    """accepted + dropped == offered, and delivered never exceeds accepted."""
    link = BottleneckLink(BandwidthTrace.constant(24.0), min_rtt=0.05, buffer_packets=buffer_packets)
    total_offered = 0.0
    total_accepted = 0.0
    now = 0.0
    for amount in offered:
        accepted, dropped, random_lost = link.enqueue(0, amount, now)
        assert accepted + dropped + random_lost == pytest.approx(amount, abs=1e-9)
        total_offered += amount
        total_accepted += accepted
        link.drain(now, dt=0.01)
        now += 0.01
    assert link.total_delivered <= total_accepted + 1e-6
    assert link.queue_occupancy == pytest.approx(total_accepted - link.total_delivered, abs=1e-6)
