"""Smoke tests for the experiment drivers (at very small scale).

These tests verify the structural contract of every figure/table driver —
the benchmark suite exercises them at the reporting scale.
"""

import numpy as np
import pytest

from repro.harness import experiments

QUICK = dict(training_steps=60, seed=31)


@pytest.mark.slow
class TestMotivation:
    def test_fig1_noise(self):
        result = experiments.motivation_noise(duration=4.0, **QUICK)
        assert result["figure"] == "1"
        assert {r["scheme"] for r in result["rows"]} == {"orca", "orca-noise", "canopy", "canopy-noise"}
        assert "orca_noise_drop" in result and "canopy_noise_drop" in result
        assert len(result["series"]["orca"]["time"]) > 0

    def test_fig2_bad_state(self):
        result = experiments.motivation_bad_state(duration=4.0, **QUICK)
        assert result["figure"] == "2"
        assert {r["scheme"] for r in result["rows"]} == {"orca", "canopy"}
        assert len(result["series"]["canopy"]["decision_time"]) > 0


@pytest.mark.slow
class TestQCSatFigures:
    def test_fig5_structure(self):
        result = experiments.qcsat_buffers(duration=3.0, n_components=5,
                                           n_synthetic=1, n_cellular=1, **QUICK)
        rows = result["rows"]
        assert len(rows) == 8  # 2 families x 2 trace kinds x 2 schemes
        for row in rows:
            assert 0.0 <= row["qcsat_mean"] <= 1.0

    def test_fig6_components(self):
        result = experiments.certified_components(duration=3.0, n_components=6, max_steps=5, **QUICK)
        assert result["figure"] == "6/8"
        assert len(result["steps"]) > 0
        first = result["steps"][0]
        assert np.asarray(first["output_bounds"]).shape == (6, 2)

    def test_fig7_robustness(self):
        result = experiments.qcsat_robustness(duration=3.0, n_components=5,
                                              n_synthetic=1, n_cellular=1, **QUICK)
        assert len(result["rows"]) == 4
        for row in result["rows"]:
            assert row["scheme"] in ("canopy", "orca")


@pytest.mark.slow
class TestPerformanceFigures:
    def test_fig9_shallow_sweep(self):
        result = experiments.performance_sweep(buffer_bdp=1.0, duration=4.0,
                                                n_synthetic=1, n_cellular=1, **QUICK)
        assert result["figure"] == "9"
        schemes = {row["scheme"] for row in result["rows"]}
        assert schemes == {"canopy", "orca", "cubic", "vegas", "bbr"}

    def test_fig10_deep_sweep(self):
        result = experiments.performance_sweep(buffer_bdp=5.0, canopy_kind="canopy-deep",
                                                duration=4.0, n_synthetic=1, n_cellular=0 or 1, **QUICK)
        assert result["figure"] == "10"

    def test_fig11_noise_sensitivity(self):
        result = experiments.noise_sensitivity(duration=4.0, n_traces=1, **QUICK)
        assert {row["scheme"] for row in result["rows"]} == {"orca", "canopy"}
        for row in result["rows"]:
            assert np.isfinite(row["utilization_change_pct"])

    def test_fig12_realworld(self):
        result = experiments.realworld_deployment(duration=4.0, profiles_per_category=1, **QUICK)
        categories = {row["category"] for row in result["rows"]}
        assert categories == {"intra", "inter"}
        for row in result["rows"]:
            assert 0.0 < row["normalized_throughput"] <= 1.0 + 1e-9
            assert row["normalized_delay"] >= 1.0 - 1e-9

    def test_fig13_fallback(self):
        result = experiments.fallback_runtime(duration=3.0, thresholds=(0.0, 0.8),
                                              n_components=4, n_traces=1, **QUICK)
        assert len(result["rows"]) == 8  # 2 families x 2 schemes x 2 thresholds
        for row in result["rows"]:
            assert 0.0 <= row["fallback_fraction"] <= 1.0

    def test_fig13_fallback_shards_identically(self):
        serial = experiments.fallback_runtime(duration=3.0, thresholds=(0.0, 0.8),
                                              n_components=4, n_traces=1, n_jobs=1, **QUICK)
        parallel = experiments.fallback_runtime(duration=3.0, thresholds=(0.0, 0.8),
                                                n_components=4, n_traces=1, n_jobs=2, **QUICK)
        assert serial["rows"] == parallel["rows"]


@pytest.mark.slow
class TestTopologySweep:
    def test_topology_sweep_structure(self):
        result = experiments.topology_sweep(
            families=("single_bottleneck", "chain(2)", "parking_lot(2)"),
            schemes=("cubic", "vegas"), duration=3.0, n_synthetic=1, seed=31)
        assert result["figure"] == "topology"
        assert len(result["rows"]) == 6  # 3 families x 2 schemes
        assert result["ticks"] == 6 * 300
        assert result["ticks_per_sec"] > 0.0
        for row in result["rows"]:
            assert 0.0 < row["utilization"] <= 1.5
            assert row["avg_delay_ms"] >= 0.0

    def test_topology_sweep_defaults_cover_family_catalog(self):
        result = experiments.topology_sweep(duration=2.0, n_synthetic=1, seed=31)
        assert set(result["families"]) == {"single_bottleneck", "chain(3)",
                                           "parking_lot(3)", "dumbbell",
                                           "fan_in(3)", "tree(2)", "shared_segment"}

    def test_performance_sweep_topology_axis(self):
        result = experiments.performance_sweep(
            buffer_bdp=1.0, duration=3.0, n_synthetic=1, n_cellular=1,
            topologies=("single_bottleneck", "chain(2)"), **QUICK)
        rows = result["rows"]
        assert len(rows) == 20  # 2 topologies x 2 trace kinds x 5 schemes
        assert {row["topology"] for row in rows} == {"single_bottleneck", "chain(2)"}


@pytest.mark.slow
class TestTopologyGeneralization:
    GRID = dict(families=("single_bottleneck", "chain(2)", "parking_lot(2)"),
                duration=2.0, n_components=4, n_synthetic=1, **QUICK)

    def test_needs_at_least_two_families(self):
        with pytest.raises(ValueError):
            experiments.topology_generalization(families=["chain(2)"], **QUICK)

    def test_mixed_label_is_reserved(self):
        with pytest.raises(ValueError):
            experiments.topology_generalization(
                families=[experiments.MIXED_TRAINING_LABEL, "chain(2)"], **QUICK)

    def test_duplicate_families_rejected(self):
        with pytest.raises(ValueError):
            experiments.topology_generalization(families=["chain(2)", "chain(2)"], **QUICK)

    def test_grid_structure_and_mixed_model(self):
        result = experiments.topology_generalization(n_jobs=1, **self.GRID)
        families = list(self.GRID["families"])
        assert result["figure"] == "topology_generalization"
        assert result["families"] == families
        assert result["train_families"] == families + [experiments.MIXED_TRAINING_LABEL]
        assert len(result["rows"]) == 4 * 3  # (3 single-family models + mixed) x 3 eval families
        cells = {(row["train_family"], row["eval_family"]) for row in result["rows"]}
        assert len(cells) == len(result["rows"]), "duplicate (train, eval) cells"
        for row in result["rows"]:
            assert 0.0 <= row["qcsat"] <= 1.0
            assert 0.0 < row["utilization"] <= 1.5
            assert row["avg_delay_ms"] >= 0.0
            assert row["n_traces"] == 1
        assert result["certificates"] > 0
        assert result["certificates_per_sec"] > 0.0

    def test_include_mixed_false_trains_per_family_only(self):
        result = experiments.topology_generalization(
            families=("single_bottleneck", "chain(2)"), include_mixed=False,
            duration=2.0, n_components=4, n_synthetic=1, n_jobs=1, **QUICK)
        assert result["train_families"] == ["single_bottleneck", "chain(2)"]
        assert len(result["rows"]) == 4

    def test_serial_and_parallel_rows_identical(self):
        serial = experiments.topology_generalization(n_jobs=1, **self.GRID)
        parallel = experiments.topology_generalization(n_jobs=2, **self.GRID)
        assert serial["rows"] == parallel["rows"]
        assert serial["train_families"] == parallel["train_families"]

    def test_registry_path_matches_driver_and_resumes(self, tmp_path):
        from repro.harness.registry import REGISTRY
        from repro.harness.store import RunStore

        driver = experiments.topology_generalization(n_jobs=1, **self.GRID)
        overrides = {"families": self.GRID["families"], "duration": self.GRID["duration"],
                     "n_components": self.GRID["n_components"],
                     "n_traces": self.GRID["n_synthetic"],
                     "training_steps": QUICK["training_steps"],
                     "seeds": (QUICK["seed"],)}
        stored = REGISTRY.run("topology_generalization", overrides,
                              store=RunStore(tmp_path), resume=True)
        assert stored["rows"] == driver["rows"]
        resumed = REGISTRY.run("topology_generalization", overrides,
                               store=RunStore(tmp_path), resume=True)
        assert resumed["computed_cells"] == 0
        assert resumed["rows"] == driver["rows"]
        # Cached cells certified nothing this run: no throughput is claimed.
        assert resumed["certificates_per_sec"] == 0.0

    def test_property_family_product_axis_in_one_store(self, tmp_path):
        # The ROADMAP open item: families x property_family certified within
        # ONE grid (and one resumable store) instead of one rerun per family.
        from repro.harness.registry import REGISTRY
        from repro.harness.store import RunStore

        overrides = {"families": "single_bottleneck,chain(2)", "include_mixed": "0",
                     "training_steps": "40", "duration": "2.0", "n_components": "4",
                     "n_traces": "1", "seeds": "1", "property_family": "shallow,deep"}
        store = RunStore(tmp_path)
        result = REGISTRY.run("topology_generalization", overrides, store=store,
                              resume=True)
        assert result["property_family"] == ["shallow", "deep"]
        assert len(result["rows"]) == 2 * 4  # 2 property families x (2x2) grid
        assert {row["property_family"] for row in result["rows"]} == {"shallow", "deep"}
        for row in result["rows"]:
            assert 0.0 <= row["qcsat"] <= 1.0
        # One store holds both certified families, and a rerun is fully cached.
        families_in_store = {record.spec["property_family"]
                             for record in store.records()}
        assert families_in_store == {"shallow", "deep"}
        resumed = REGISTRY.run("topology_generalization", overrides, store=store,
                               resume=True)
        assert resumed["computed_cells"] == 0
        assert resumed["rows"] == result["rows"]
        # Growing a single-family store to the product axis reuses the cached
        # single-family cells (the family lives in the scenario key, not in a
        # fingerprint-changing tag): only the new family's cells compute.
        grown = REGISTRY.run("topology_generalization",
                             {**overrides, "property_family": "shallow,deep,robustness"},
                             store=store, resume=True)
        assert grown["computed_cells"] == 4  # only the robustness cells

    def test_single_property_family_keeps_legacy_row_shape(self):
        result = experiments.topology_generalization(
            families=("single_bottleneck", "chain(2)"), include_mixed=False,
            duration=2.0, n_components=4, n_synthetic=1, n_jobs=1, **QUICK)
        assert result["property_family"] == "shallow"
        assert all("property_family" not in row for row in result["rows"])

    def test_larger_grid_via_set_overrides_no_code_change(self):
        # The ROADMAP scale-up: >= 3 seeds per cell and the cellular suite on
        # the eval axis, purely through string (--set style) overrides.
        from repro.harness.registry import REGISTRY

        result = REGISTRY.run("topology_generalization", {
            "families": "single_bottleneck,chain(2)",
            "include_mixed": "0",
            "training_steps": "40",
            "duration": "2.0",
            "n_components": "4",
            "trace": "cellular",
            "n_traces": "1",
            "seeds": "0..2",
        })
        assert result["train_families"] == ["single_bottleneck", "chain(2)"]
        assert len(result["rows"]) == 4
        for row in result["rows"]:
            assert row["n_cells"] == 3  # 3 seeds x 1 cellular trace per cell
            assert row["n_traces"] == 1
            assert 0.0 <= row["qcsat"] <= 1.0
        assert result["computed_cells"] == 12
        assert result["axes"]["trace"] == ["cellular"]
        assert result["axes"]["seeds"] == [0, 1, 2]


@pytest.mark.slow
class TestWorkloadStress:
    GRID = dict(schemes=("canopy-shallow",), topologies=("single_bottleneck", "fan_in(2)"),
                workloads=("static", "poisson(0.5)"), duration=2.0, n_components=4,
                n_traces=1, **QUICK)

    def test_grid_structure_and_certification(self):
        result = experiments.workload_stress(n_jobs=1, **self.GRID)
        assert result["figure"] == "workload_stress"
        assert result["workloads"] == ["static", "poisson(0.5)"]
        assert len(result["rows"]) == 4  # 2 topologies x 2 workloads
        for row in result["rows"]:
            assert row["workload"] in ("static", "poisson(0.5)")
            assert 0.0 < row["utilization"] <= 1.5
            assert 0.0 <= row["qcsat"] <= 1.0
        assert result["certificates"] > 0

    def test_serial_and_parallel_rows_identical(self):
        serial = experiments.workload_stress(n_jobs=1, **self.GRID)
        parallel = experiments.workload_stress(n_jobs=2, **self.GRID)
        assert serial["rows"] == parallel["rows"]

    def test_registry_resume_round_trip(self, tmp_path):
        # The acceptance shape: run, resume (all cached), rows byte-identical.
        import json

        from repro.harness.registry import REGISTRY
        from repro.harness.store import RunStore

        overrides = {"schemes": "canopy-shallow", "topology": "fan_in(2)",
                     "workload": "poisson(0.5)", "training_steps": "60",
                     "duration": "2.0", "n_components": "4", "seeds": "31"}
        first = REGISTRY.run("workload_stress", overrides, n_jobs=2,
                             store=RunStore(tmp_path), resume=True)
        again = REGISTRY.run("workload_stress", overrides, n_jobs=1,
                             store=RunStore(tmp_path), resume=True)
        assert again["computed_cells"] == 0
        assert json.dumps(first["rows"]) == json.dumps(again["rows"])
        # The scenario keys carry the workload axis.
        (record,) = RunStore(tmp_path).records()
        assert record.spec["workload"] == "poisson(0.5)"
        assert "workload=poisson(0.5)" in record.key

    def test_classical_schemes_run_uncertified(self):
        result = experiments.workload_stress(
            schemes=("cubic",), topologies=("fan_in(2)",),
            workloads=("responsive(cubic)",), duration=2.0, n_traces=1,
            n_jobs=1, **QUICK)
        (row,) = result["rows"]
        assert "qcsat" not in row
        assert result["certificates"] == 0


@pytest.mark.slow
class TestSensitivityAndTraining:
    def test_fig16_sensitivity(self):
        result = experiments.sensitivity(n_values=(1, 2), lambda_values=(0.25,),
                                         training_steps=40, duration=3.0, n_traces=1, seed=31)
        labels = {row["label"] for row in result["rows"]}
        assert "N1-lam0.25" in labels and "N2-lam0.25" in labels

    def test_fig17_training_curves(self):
        result = experiments.training_curves(training_steps=60, seed=32)
        assert set(result["curves"]) == {"canopy", "orca"}
        assert len(result["curves"]["canopy"]["step"]) > 0
        assert set(result["final"]["canopy"]) == {"raw_reward", "verifier_reward", "total_reward"}

    def test_table4_overhead(self):
        result = experiments.verification_overhead(n_values=(1, 5), training_steps=40, seed=33)
        rows = result["rows"]
        assert rows[0]["scheme"] == "orca"
        assert len(rows) == 3
        for row in rows:
            assert row["steps_per_second"] > 0.0
        # Verification adds measurable time compared to the Orca baseline.
        assert rows[0]["verifier_seconds"] <= min(r["verifier_seconds"] for r in rows[1:]) + 1e-9
