"""Tests for the batched Box convention and one-pass batched propagation."""

import numpy as np
import pytest

from repro.abstract.box import Box
from repro.abstract.interval import Interval
from repro.abstract.propagate import propagate_mlp, propagate_mlp_batched
from repro.core.qc import interval_feedback, interval_feedback_batch
from repro.nn import make_actor


class TestBatchedBox:
    def test_stack_and_unstack_roundtrip(self):
        boxes = [Box.from_bounds([0.0, 1.0], [1.0, 2.0]), Box.from_bounds([-1.0, 0.5], [0.0, 0.5])]
        stacked = Box.stack(boxes)
        assert stacked.shape == (2, 2)
        for original, recovered in zip(boxes, stacked.unstack()):
            np.testing.assert_array_equal(original.lo, recovered.lo)
            np.testing.assert_array_equal(original.hi, recovered.hi)

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            Box.stack([])

    def test_unstack_requires_batch_axis(self):
        with pytest.raises(ValueError):
            Box.from_bounds([0.0], [1.0]).unstack()

    def test_split_batched_matches_split(self):
        rng = np.random.default_rng(5)
        lo = rng.uniform(-1.0, 0.0, 6)
        hi = lo + rng.uniform(0.0, 2.0, 6)
        box = Box.from_bounds(lo, hi)
        for dims in (None, [1, 3], [0]):
            batched = box.split_batched(4, dims=dims)
            pieces = box.split(4, dims=dims)
            assert batched.shape == (4, 6)
            for row, piece in zip(batched.unstack(), pieces):
                np.testing.assert_array_equal(row.lo, piece.lo)
                np.testing.assert_array_equal(row.hi, piece.hi)

    def test_split_batched_requires_1d(self):
        batched = Box.from_bounds(np.zeros((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            batched.split_batched(2)
        with pytest.raises(ValueError):
            Box.from_bounds([0.0], [1.0]).split_batched(0)

    def test_batched_affine_matches_per_row(self):
        rng = np.random.default_rng(9)
        weight = rng.normal(size=(3, 4))
        bias = rng.normal(size=3)
        boxes = [Box.from_bounds(rng.uniform(-1, 0, 4), rng.uniform(0, 1, 4)) for _ in range(5)]
        batched = Box.stack(boxes).affine(weight, bias)
        assert batched.shape == (5, 3)
        for row, box in zip(batched.unstack(), boxes):
            single = box.affine(weight, bias)
            np.testing.assert_allclose(row.lo, single.lo, rtol=0.0, atol=1e-12)
            np.testing.assert_allclose(row.hi, single.hi, rtol=0.0, atol=1e-12)

    def test_batched_elementwise_transformers_match_per_row(self):
        rng = np.random.default_rng(13)
        boxes = [Box.from_bounds(rng.uniform(-2, 0, 3), rng.uniform(0, 2, 3)) for _ in range(4)]
        stacked = Box.stack(boxes)
        for name in ("relu", "tanh"):
            batched = getattr(stacked, name)()
            for row, box in zip(batched.unstack(), boxes):
                single = getattr(box, name)()
                np.testing.assert_array_equal(row.lo, single.lo)
                np.testing.assert_array_equal(row.hi, single.hi)

    def test_add_elements_single_and_batched(self):
        box = Box.from_bounds([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        summed = box.add_elements(0, 1, 2)
        np.testing.assert_array_equal(summed.lo, [3.0, 1.0, 2.0])
        np.testing.assert_array_equal(summed.hi, [5.0, 2.0, 3.0])
        batched = Box.stack([box, box]).add_elements(0, 1, 2)
        np.testing.assert_array_equal(batched.lo[1], [3.0, 1.0, 2.0])


class TestBatchedPropagation:
    def test_batched_mlp_matches_per_component(self):
        rng = np.random.default_rng(21)
        actor = make_actor(6, hidden_sizes=(8, 4), rng=rng)
        box = Box.from_bounds(rng.uniform(0, 0.5, 6), rng.uniform(0.5, 1.0, 6))
        batched_out = propagate_mlp_batched(actor, box.split_batched(7))
        assert batched_out.shape == (7, 1)
        for row, component in zip(batched_out.unstack(), box.split(7)):
            single = propagate_mlp(actor, component)
            np.testing.assert_allclose(row.lo, single.lo, rtol=0.0, atol=1e-12)
            np.testing.assert_allclose(row.hi, single.hi, rtol=0.0, atol=1e-12)

    def test_batched_mlp_rejects_wrong_shapes(self):
        actor = make_actor(6, hidden_sizes=(4,), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            propagate_mlp_batched(actor, Box.from_bounds(np.zeros(6), np.ones(6)))
        with pytest.raises(ValueError):
            propagate_mlp_batched(actor, Box.from_bounds(np.zeros((3, 5)), np.ones((3, 5))))


class TestBatchedFeedback:
    def test_matches_scalar_feedback_on_random_intervals(self):
        rng = np.random.default_rng(31)
        allowed = Interval(-0.5, 1.5)
        lo = rng.uniform(-3.0, 2.0, 200)
        hi = lo + rng.uniform(0.0, 3.0, 200)
        # Mix in degenerate (point) intervals.
        hi[::5] = lo[::5]
        satisfied, feedback = interval_feedback_batch(lo, hi, allowed)
        for i in range(lo.shape[0]):
            output = Interval(lo[i], hi[i])
            assert satisfied[i] == allowed.contains_interval(output)
            assert feedback[i] == pytest.approx(interval_feedback(output, allowed), rel=0.0, abs=0.0)

    def test_boundary_cases(self):
        allowed = Interval(0.0, 1.0)
        lo = np.array([0.0, -1.0, 1.0, 2.0, 0.25, -1.0])
        hi = np.array([1.0, -0.5, 1.0, 3.0, 0.75, 1.0])
        satisfied, feedback = interval_feedback_batch(lo, hi, allowed)
        assert list(satisfied) == [True, False, True, False, True, False]
        np.testing.assert_allclose(feedback, [1.0, 0.0, 1.0, 0.0, 1.0, 0.5])
