"""IBP soundness fuzz tests for the batched certification engine.

Soundness condition: for every concrete state inside a certified input
component, the concretely computed checked action (Δcwnd for the direction
properties, the fractional cwnd change for robustness) must lie inside that
component's certified ``[output_lo, output_hi]`` interval.

``cwnd_tcp`` is drawn from [10, 100] so the concrete cwnd map's MIN_CWND
clamp (``max(MIN_CWND, 2^(2a)·cwnd_tcp)`` with a >= -1) can never bind —
inside that regime the concrete map coincides exactly with the abstract
transformer the verifier uses.
"""

import numpy as np
import pytest

from repro.core.properties import (
    property_p1,
    property_p2,
    property_p3,
    property_p4_case_i,
    property_p4_case_ii,
    property_p5,
)
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.agent import cwnd_from_action
from repro.orca.observations import ObservationConfig

N_SEEDS = 12
POINTS_PER_COMPONENT = 8
TOL = 1e-6

DELTA_PROPERTIES = (
    property_p1,
    property_p2,
    property_p3,
    property_p4_case_i,
    property_p4_case_ii,
)


def random_verifier(seed, n_components):
    rng = np.random.default_rng(seed)
    obs_config = ObservationConfig()
    hidden_sizes = tuple(int(rng.integers(4, 25)) for _ in range(int(rng.integers(1, 3))))
    actor = make_actor(obs_config.state_dim, hidden_sizes=hidden_sizes, rng=rng)
    verifier = Verifier(actor, obs_config, VerifierConfig(n_components=n_components))
    state = rng.uniform(0.0, 1.0, obs_config.state_dim)
    cwnd_tcp = float(rng.uniform(10.0, 100.0))
    cwnd_prev = float(rng.uniform(10.0, 100.0))
    return rng, verifier, actor, state, cwnd_tcp, cwnd_prev


def sample_points(rng, component, n_points):
    span = component.input_hi - component.input_lo
    return [component.input_lo + rng.random(span.shape[0]) * span for _ in range(n_points)]


def concrete_cwnd(actor, point, cwnd_tcp):
    action = float(actor.forward(point.reshape(1, -1))[0, 0])
    return cwnd_from_action(action, cwnd_tcp)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_delta_cwnd_soundness(seed):
    """Concrete Δcwnd stays inside the certified interval (P1-P4)."""
    rng, verifier, actor, state, cwnd_tcp, cwnd_prev = random_verifier(seed, n_components=5)
    prop = DELTA_PROPERTIES[seed % len(DELTA_PROPERTIES)]()
    certificate = verifier.certify(prop, state, cwnd_tcp, cwnd_prev)
    for component in certificate.components:
        for point in sample_points(rng, component, POINTS_PER_COMPONENT):
            delta = concrete_cwnd(actor, point, cwnd_tcp) - cwnd_prev
            assert component.output_lo - TOL <= delta <= component.output_hi + TOL


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_cwnd_change_fraction_soundness(seed):
    """Concrete fractional cwnd change stays inside the certified interval (P5)."""
    rng, verifier, actor, state, cwnd_tcp, cwnd_prev = random_verifier(seed + 500, n_components=5)
    prop = property_p5(mu=0.05, epsilon=0.01)
    certificate = verifier.certify(prop, state, cwnd_tcp, cwnd_prev)
    cwnd_reference = verifier.concrete_cwnd(state, cwnd_tcp)
    for component in certificate.components:
        for point in sample_points(rng, component, POINTS_PER_COMPONENT):
            fraction = (concrete_cwnd(actor, point, cwnd_tcp) - cwnd_reference) / cwnd_reference
            assert component.output_lo - TOL <= fraction <= component.output_hi + TOL


@pytest.mark.parametrize("seed", range(4))
def test_component_endpoints_are_sound(seed):
    """The component corners themselves (worst cases for IBP) stay inside."""
    _rng, verifier, actor, state, cwnd_tcp, cwnd_prev = random_verifier(seed + 900, n_components=3)
    prop = property_p1()
    certificate = verifier.certify(prop, state, cwnd_tcp, cwnd_prev)
    for component in certificate.components:
        for point in (component.input_lo, component.input_hi):
            delta = concrete_cwnd(actor, np.asarray(point), cwnd_tcp) - cwnd_prev
            assert component.output_lo - TOL <= delta <= component.output_hi + TOL
