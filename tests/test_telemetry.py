"""Tests for the structured-telemetry subsystem (ISSUE 7).

Covers the spec grammar and its canonical forms, the event schema round-trip,
the determinism pins the ISSUE names — serial == sharded == resumed traces
are *byte-identical* on ``fan_in(3)`` + ``poisson(0.1)`` cells, and disabled
telemetry leaves trajectories bit-identical (atol=1e-12) with every
pre-telemetry store key unchanged — plus the summary reducer, the tick
profiler, and the timeline renderer behind ``python -m repro trace``.
"""

import json

import numpy as np
import pytest

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.netsim import NetworkSimulator
from repro.harness.evaluate import EvaluationSettings, run_scheme_on_trace, scheme_factory
from repro.harness.parallel import ExperimentTask, ParallelRunner
from repro.harness.registry import REGISTRY
from repro.telemetry import (
    EVENT_GROUPS,
    EVENT_KINDS,
    EventTrace,
    TelemetryConfig,
    TickProfiler,
    canonical_telemetry,
    parse_telemetry,
    render_summary,
    render_timeline,
    summarize_events,
    validate_events,
)
from repro.telemetry.render import resolve_groups
from repro.telemetry.summary import fallback_episodes
from repro.topology import build_topology
from repro.traces.trace import BandwidthTrace


def constant_trace(mbps=24.0, duration=60.0, name="const"):
    return BandwidthTrace.constant(mbps, duration=duration, name=name)


def traced_run(topology="fan_in(3)", workload="poisson(0.1)", telemetry="on(10)",
               duration=3.0, seed=7):
    settings = EvaluationSettings(duration=duration, buffer_bdp=1.0,
                                  topology=topology, workload=workload,
                                  telemetry=telemetry, seed=seed)
    return run_scheme_on_trace(scheme_factory("cubic"), constant_trace(name="const-24"),
                               settings, scheme_name="cubic")


# ---------------------------------------------------------------------- #
# Spec grammar
# ---------------------------------------------------------------------- #
class TestSpecGrammar:
    def test_off_parses_to_none(self):
        assert parse_telemetry("off") is None
        assert parse_telemetry(" OFF ") is None
        assert EventTrace.from_spec("off") is None

    def test_on_and_stride_forms(self):
        assert parse_telemetry("on") == TelemetryConfig()
        assert parse_telemetry("on(5)") == TelemetryConfig(stride=5)
        assert parse_telemetry("ON( 25 )") == TelemetryConfig(stride=25)

    @pytest.mark.parametrize("spec", ["o", "on()", "on(0)", "on(x)", "yes", "on(5"])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_telemetry(spec)

    def test_canonical_forms(self):
        assert canonical_telemetry("OFF") == "off"
        assert canonical_telemetry("ON( 25 )") == "on"     # default stride elided
        assert canonical_telemetry("on(10)") == "on(10)"
        # Canonicalization is idempotent over the whole grammar.
        for spec in ("off", "on", "on(10)"):
            assert canonical_telemetry(canonical_telemetry(spec)) == canonical_telemetry(spec)

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryConfig(stride=0)


# ---------------------------------------------------------------------- #
# EventTrace + schema round-trip
# ---------------------------------------------------------------------- #
class TestEventTrace:
    def test_emit_stamps_trace_clock(self):
        trace = EventTrace()
        trace.advance(1.5)
        trace.emit("flow_arrival", flow=3)
        trace.emit("queue_drop", t=2.0, hop="bottleneck", flow=0, packets=4.0)
        assert trace.events == [
            {"t": 1.5, "kind": "flow_arrival", "flow": 3},
            {"t": 2.0, "kind": "queue_drop", "hop": "bottleneck", "flow": 0, "packets": 4.0},
        ]
        assert len(trace) == 2
        assert trace.select(["queue_drop"]) == trace.events[1:]

    def test_unknown_kind_raises_at_emit(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventTrace().emit("not_a_kind")

    def test_validate_catches_missing_required_field(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_events([{"t": 0.0, "kind": "queue_drop", "hop": "b"}])

    def test_validate_catches_backwards_timestamps(self):
        events = [{"t": 2.0, "kind": "flow_arrival", "flow": 1},
                  {"t": 1.0, "kind": "flow_departure", "flow": 1}]
        with pytest.raises(ValueError, match="runs backwards"):
            validate_events(events)

    def test_validate_catches_bad_field_type(self):
        with pytest.raises(ValueError):
            validate_events([{"t": 0.0, "kind": "queue_drop", "hop": "b",
                              "flow": "zero", "packets": 1.0}])

    def test_real_trace_schema_round_trips(self):
        """A simulator-produced trace validates, survives JSON byte-exactly,
        and validates again after the round trip."""
        run = traced_run()
        assert run.events, "traced run produced no events"
        validate_events(run.events)
        round_tripped = json.loads(json.dumps(run.events))
        validate_events(round_tripped)
        assert round_tripped == run.events
        kinds = {event["kind"] for event in run.events}
        assert "topology" in kinds and "conservation" in kinds
        assert kinds <= set(EVENT_KINDS)

    def test_topology_event_names_hops(self):
        run = traced_run(topology="fan_in(3)")
        (topo,) = [e for e in run.events if e["kind"] == "topology"]
        assert topo["t"] == 0.0
        assert topo["bottleneck"] in topo["hops"]
        assert len(topo["hops"]) == 4  # 3 leaves + shared bottleneck

    def test_conservation_stride_respected(self):
        run = traced_run(telemetry="on(10)", duration=2.0)
        snapshots = [e for e in run.events if e["kind"] == "conservation"]
        # dt=0.01, 200 ticks, one snapshot every 10 ticks.
        assert len(snapshots) == 20
        times = [e["t"] for e in snapshots]
        assert times == sorted(times)

    def test_conservation_snapshot_balances(self):
        """Each snapshot's sent == acked + lost + queued + in-transit + pending."""
        run = traced_run(workload="static", topology="chain(3)", telemetry="on(25)")
        for snap in (e for e in run.events if e["kind"] == "conservation"):
            queued = sum(snap["hops"].values())
            assert snap["sent"] == pytest.approx(
                snap["acked"] + snap["lost"] + queued + snap["transit"] + snap["pending"],
                abs=1e-9)


# ---------------------------------------------------------------------- #
# Determinism pins
# ---------------------------------------------------------------------- #
def _stress_tasks(telemetry):
    trace = constant_trace(name="const-24")
    tasks = []
    for topology in ("fan_in(3)", "chain(2)"):
        for seed in (3, 4):
            settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                          topology=topology, workload="poisson(0.1)",
                                          telemetry=telemetry, seed=seed)
            tasks.append(ExperimentTask(scheme="cubic", trace=trace, settings=settings))
    return tasks


class TestTraceDeterminism:
    def test_serial_and_sharded_traces_byte_identical(self):
        serial = ParallelRunner(1).run(_stress_tasks("on(10)"))
        sharded = ParallelRunner(2).run(_stress_tasks("on(10)"))
        assert json.dumps(serial.rows, sort_keys=True) == \
            json.dumps(sharded.rows, sort_keys=True)
        for row in serial.rows:
            assert row["telemetry"] == "on(10)"
            assert row["telemetry_events"], "traced cell carried no events"

    def test_resumed_traces_byte_identical(self, tmp_path):
        """An interrupted-then-resumed traced grid (one cell cached, one
        recomputed) yields per-cell records byte-identical to a fresh run."""
        from repro.harness.store import RunStore

        overrides = {"schemes": "cubic", "topology": "fan_in(3)",
                     "workload": "poisson(0.1)", "duration": "3.0",
                     "telemetry": "on(10)", "seeds": "3,4"}
        fresh_store = RunStore(tmp_path / "fresh")
        REGISTRY.run("workload_stress", overrides, store=fresh_store)
        fresh = fresh_store.load()
        assert len(fresh) == 2

        # Simulate an interrupted run: only the first cell made it to disk.
        resumed_store = RunStore(tmp_path / "resumed")
        first_key = sorted(fresh)[0]
        resumed_store.put(fresh[first_key])
        result = REGISTRY.run("workload_stress", overrides,
                              store=resumed_store, resume=True)
        assert result["cached_cells"] == 1 and result["computed_cells"] == 1

        resumed = resumed_store.load()
        assert sorted(resumed) == sorted(fresh)
        for key in fresh:
            assert json.dumps(fresh[key].row, sort_keys=True) == \
                json.dumps(resumed[key].row, sort_keys=True), key
            validate_events(resumed[key].row["telemetry_events"])

    def test_disabled_telemetry_is_bit_identical(self):
        """telemetry=off vs telemetry=on: the physics trajectory must agree to
        atol=1e-12 (the enabled trace observes, never perturbs)."""
        for topology in ("single_bottleneck", "fan_in(3)"):
            baseline = traced_run(topology=topology, telemetry="off")
            traced = traced_run(topology=topology, telemetry="on(10)")
            assert baseline.events == []
            for attr in ("times", "sent", "acked", "lost", "rtt",
                         "queuing_delay", "cwnd", "inflight"):
                np.testing.assert_allclose(
                    getattr(baseline.simulation.stats_for(0), attr),
                    getattr(traced.simulation.stats_for(0), attr),
                    rtol=0.0, atol=1e-12,
                    err_msg=f"telemetry perturbed {attr} on {topology}")

    def test_off_cells_keep_pre_telemetry_keys(self):
        """The telemetry knob enters the cell-key digest only when enabled, so
        every pre-telemetry store key (incl. the committed golden stores)
        stays valid verbatim."""
        trace = constant_trace(name="const-24")

        def key_for(**kwargs):
            settings = EvaluationSettings(duration=3.0, topology="chain(2)",
                                          seed=1, **kwargs)
            return ExperimentTask(scheme="cubic", trace=trace,
                                  settings=settings).cell_key()

        assert key_for() == key_for(telemetry="off")
        assert key_for(telemetry="on") != key_for()
        assert key_for(telemetry="on") != key_for(telemetry="on(10)")


# ---------------------------------------------------------------------- #
# Summary reducer
# ---------------------------------------------------------------------- #
class TestSummarize:
    def synthetic_events(self):
        return [
            {"t": 0.0, "kind": "topology", "name": "chain(2)",
             "hops": ["hop0", "bottleneck"], "bottleneck": "bottleneck"},
            {"t": 0.0, "kind": "flow_arrival", "flow": 0},
            {"t": 0.5, "kind": "qc_decision", "qc": 0.9, "margin": 0.4, "allowed": True},
            {"t": 1.0, "kind": "qc_decision", "qc": 0.2, "margin": -0.3, "allowed": False},
            {"t": 1.0, "kind": "fallback_enter", "qc": 0.2},
            {"t": 2.0, "kind": "qc_decision", "qc": 0.8, "margin": 0.3, "allowed": True},
            {"t": 2.0, "kind": "fallback_exit", "qc": 0.8},
            {"t": 2.5, "kind": "queue_drop", "hop": "bottleneck", "flow": 0, "packets": 3.0},
            {"t": 3.0, "kind": "transit_drop", "hop": "hop0", "flow": 1, "packets": 2.0},
            {"t": 3.0, "kind": "flow_arrival", "flow": 1},
            {"t": 3.5, "kind": "conservation", "hops": {"hop0": 0.0, "bottleneck": 10.0},
             "caps": {"hop0": 100.0, "bottleneck": 50.0}, "transit": 0.0,
             "sent": 20.0, "acked": 5.0, "lost": 5.0},
            {"t": 4.0, "kind": "flow_departure", "flow": 1},
            {"t": 4.5, "kind": "fallback_enter", "qc": 0.1},
            {"t": 5.0, "kind": "transit_high_water", "hop": "bottleneck", "packets": 12.5},
        ]

    def test_fallback_episodes_close_open_storms_at_end(self):
        episodes = fallback_episodes(self.synthetic_events(), end_time=6.0)
        assert [(ep["start"], ep["stop"]) for ep in episodes] == [(1.0, 2.0), (4.5, 6.0)]
        assert episodes[1]["duration_s"] == pytest.approx(1.5)

    def test_summary_row(self):
        row = summarize_events(self.synthetic_events(), duration=6.0)
        assert row["tele_n_events"] == 14
        assert row["tele_fallback_episodes"] == 2
        assert row["tele_fallback_longest_s"] == pytest.approx(1.5)
        assert row["tele_qc_decisions"] == 3
        assert row["tele_qc_margin_min"] == pytest.approx(-0.3)
        assert row["tele_drop_events"] == 2
        assert row["tele_dropped_packets"] == pytest.approx(5.0)
        assert row["tele_drops_bottleneck"] == pytest.approx(3.0)
        assert row["tele_drops_hop0"] == pytest.approx(2.0)
        # Queue delay: bottleneck 10/50 = 0.2 s -> 200 ms (single sample).
        assert row["tele_queue_p50_ms_bottleneck"] == pytest.approx(200.0)
        assert row["tele_queue_p99_ms_hop0"] == pytest.approx(0.0)
        # Churn: flow 0 alone [0,3) and [4,6), both flows [3,4).
        assert row["tele_churn_max_overlap"] == 2
        assert row["tele_churn_overlap_hist"] == {"1": 5.0, "2": 1.0}
        assert row["tele_churn_mean_overlap"] == pytest.approx(7.0 / 6.0)
        assert row["tele_transit_high_water"] == pytest.approx(12.5)

    def test_summary_scalars_are_bench_compatible(self):
        """Everything except the histogram is a scalar (flows into BENCH rows)."""
        row = summarize_events(self.synthetic_events(), duration=6.0)
        non_scalar = [key for key, value in row.items()
                      if not isinstance(value, (int, float))]
        assert non_scalar == ["tele_churn_overlap_hist"]

    def test_empty_trace_summarizes(self):
        row = summarize_events([], duration=1.0)
        assert row["tele_n_events"] == 0
        assert row["tele_fallback_episodes"] == 0
        assert row["tele_drop_events"] == 0


# ---------------------------------------------------------------------- #
# Tick profiler (wall-clock, reported separately from sim events)
# ---------------------------------------------------------------------- #
class TestTickProfiler:
    def test_phases_accumulate(self):
        profiler = TickProfiler()
        profiler.begin()
        profiler.mark("inject")
        profiler.add("transit", 0.5)
        profiler.mark("drain")
        profiler.finish()
        report = profiler.report()
        assert report["ticks"] == 1.0
        assert report["transit_s"] == pytest.approx(0.5)
        # add() shifts the mark origin: the explicit 0.5 s charge must not
        # also be charged to the surrounding drain mark.
        assert report["drain_s"] < 0.5
        assert sum(report[f"{p}_frac"] for p in
                   ("inject", "enqueue", "transit", "drain", "acks")) == pytest.approx(1.0)

    def test_attached_profiler_times_simulator_phases(self):
        trace = constant_trace(name="const-24")
        topology = build_topology("chain(3)", trace, min_rtt=0.04, seed=1)
        profiler = TickProfiler()
        sim = NetworkSimulator(topology, [Flow(0, CubicController())], dt=0.01,
                               profiler=profiler)
        sim.run(2.0)
        report = profiler.report()
        assert report["ticks"] == 200.0
        assert report["ticks_per_sec"] > 0
        assert report["drain_s"] > 0.0

    def test_profiler_never_enters_rows(self):
        """Rows must stay byte-identical across runs, so no wall-clock metric
        may leak into them."""
        (row,) = ParallelRunner(1).run(_stress_tasks("on(10)")[:1]).rows
        assert not any("tick" in key or key.endswith("_frac") for key in row)


# ---------------------------------------------------------------------- #
# Renderer (the display layer of `python -m repro trace`)
# ---------------------------------------------------------------------- #
class TestRender:
    def test_resolve_groups_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown event group"):
            resolve_groups(["fallback", "nope"])
        assert resolve_groups(["drop", "fallback"]) == ["fallback", "drop"]

    def test_fallback_timeline_marks_storms(self):
        events = [
            {"t": 0.5, "kind": "qc_decision", "qc": 0.9, "margin": 0.4, "allowed": True},
            {"t": 4.0, "kind": "fallback_enter", "qc": 0.2},
            {"t": 6.0, "kind": "fallback_exit", "qc": 0.8},
        ]
        rendered = render_timeline(events, duration=8.0, width=8)
        (lane,) = [line for line in rendered.splitlines() if "fallback" in line]
        assert "#" in lane and "." in lane
        # The storm covers [4, 6) of [0, 8) -> buckets 4 and 5 of 8.
        bar = lane.split("|")[1]
        assert bar[4] == "#" and bar[5] == "#" and bar[0] == "."
        assert "0 .. 8s" in rendered

    def test_real_trace_renders_requested_groups(self):
        run = traced_run()
        rendered = render_timeline(run.events, duration=3.0,
                                   groups=["flow", "conservation"])
        lines = rendered.splitlines()
        assert any(line.lstrip().startswith("flow ") for line in lines)
        assert any("conservation" in line for line in lines)
        assert not any("drop" in line for line in lines)

    def test_render_summary_lists_tele_entries(self):
        row = {"tele_n_events": 5, "tele_fallback_episodes": 1, "utilization": 0.9}
        rendered = render_summary(row)
        assert "tele_n_events" in rendered and "utilization" not in rendered
        assert render_summary({"utilization": 0.9}) == "(no telemetry summary in row)"

    def test_event_groups_cover_vocabulary(self):
        grouped = {kind for kinds in EVENT_GROUPS.values() for kind in kinds}
        assert grouped == set(EVENT_KINDS) - {"topology"}
