"""Tests for the standalone abstract transformers (including the cwnd map)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract import transformers
from repro.abstract.box import Box
from repro.abstract.interval import Interval


class TestElementwise:
    def test_add_independent_boxes(self):
        a = Box([1.0], [0.5])
        b = Box([2.0], [1.0])
        result = transformers.add(a, b)
        assert result.lo[0] == pytest.approx(1.5)
        assert result.hi[0] == pytest.approx(4.5)

    def test_subtract_independent_boxes(self):
        a = Box([1.0], [0.5])
        b = Box([2.0], [1.0])
        result = transformers.subtract(a, b)
        assert result.lo[0] == pytest.approx(-2.5)
        assert result.hi[0] == pytest.approx(0.5)

    def test_monotone_exp(self):
        box = Box([0.0], [1.0])
        result = transformers.monotone(box, np.exp)
        assert result.lo[0] == pytest.approx(np.exp(-1.0))
        assert result.hi[0] == pytest.approx(np.exp(1.0))

    def test_exp2(self):
        result = transformers.exp2(Box([1.0], [1.0]))
        assert result.lo[0] == pytest.approx(1.0)
        assert result.hi[0] == pytest.approx(4.0)

    def test_interval_of_accepts_both(self):
        assert isinstance(transformers.interval_of(Box([0.0], [1.0])), Interval)
        assert isinstance(transformers.interval_of(Interval(0.0, 1.0)), Interval)
        with pytest.raises(TypeError):
            transformers.interval_of(42)


class TestCwndMap:
    def test_point_action_matches_equation(self):
        action = Box.point([0.5])
        cwnd = transformers.cwnd_from_action(action, cwnd_tcp=10.0)
        expected = 2.0 ** (2 * 0.5) * 10.0
        assert cwnd.lo[0] == pytest.approx(expected)
        assert cwnd.hi[0] == pytest.approx(expected)

    def test_full_action_range_bounds(self):
        action = Box.from_bounds([-1.0], [1.0])
        cwnd = transformers.cwnd_from_action(action, cwnd_tcp=10.0)
        assert cwnd.lo[0] == pytest.approx(2.5)   # 2^-2 * 10
        assert cwnd.hi[0] == pytest.approx(40.0)  # 2^2 * 10

    def test_action_clipping(self):
        action = Box.from_bounds([-5.0], [5.0])
        cwnd = transformers.cwnd_from_action(action, cwnd_tcp=10.0)
        assert cwnd.lo[0] == pytest.approx(2.5)
        assert cwnd.hi[0] == pytest.approx(40.0)

    def test_negative_cwnd_tcp_rejected(self):
        with pytest.raises(ValueError):
            transformers.cwnd_from_action(Box.point([0.0]), cwnd_tcp=-1.0)

    def test_delta_cwnd(self):
        cwnd = Box.from_bounds([8.0], [12.0])
        delta = transformers.delta_cwnd(cwnd, cwnd_prev=10.0)
        assert delta.lo[0] == pytest.approx(-2.0)
        assert delta.hi[0] == pytest.approx(2.0)

    def test_cwnd_change_fraction(self):
        cwnd = Box.from_bounds([9.0], [11.0])
        frac = transformers.cwnd_change_fraction(cwnd, cwnd_ref=10.0)
        assert frac.lo[0] == pytest.approx(-0.1)
        assert frac.hi[0] == pytest.approx(0.1)

    def test_cwnd_change_fraction_requires_positive_reference(self):
        with pytest.raises(ValueError):
            transformers.cwnd_change_fraction(Box.point([10.0]), cwnd_ref=0.0)


@given(
    st.floats(-1.0, 1.0),
    st.floats(-1.0, 1.0),
    st.floats(0.0, 1.0),
    st.floats(1.0, 500.0),
)
@settings(max_examples=60, deadline=None)
def test_cwnd_map_soundness(a, b, t, cwnd_tcp):
    lo, hi = min(a, b), max(a, b)
    action_box = Box.from_bounds([lo], [hi])
    concrete_action = lo + t * (hi - lo)
    concrete_cwnd = 2.0 ** (2 * concrete_action) * cwnd_tcp
    abstract = transformers.cwnd_from_action(action_box, cwnd_tcp)
    assert abstract.contains([concrete_cwnd], tol=1e-6 * max(1.0, concrete_cwnd))
