"""Tests for ScenarioSpec: canonical round-trips and shared spec parsing."""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.spec import (
    PROPERTY_FAMILIES,
    ScenarioSpec,
    parse_topologies,
    resolve_trace,
    trace_names,
    trace_subset,
)
from repro.topology.families import topology_family_specs
from repro.traces.cellular import CELLULAR_TRACE_NAMES
from repro.traces.synthetic import SYNTHETIC_TRACE_NAMES
from repro.workload.spec import workload_specs

FAMILY_SPECS = topology_family_specs() + ["chain(1)", "parking_lot(4)", "chain"]

WORKLOAD_SPECS = workload_specs() + ["responsive(bbr:3)", "poisson(0.5:vegas)",
                                     "step(1-3:2-)", "static"]


def _assert_round_trips(spec: ScenarioSpec) -> None:
    assert ScenarioSpec.parse(str(spec)) == spec
    assert ScenarioSpec.parse(spec.key()) == spec
    # JSON round-trip survives an actual serialize/deserialize cycle.
    assert ScenarioSpec.from_json(json.loads(json.dumps(spec.to_json()))) == spec
    assert ScenarioSpec.parse(ScenarioSpec.from_json(spec.to_json()).key()) == spec


class TestRoundTripFuzz:
    def test_grid_of_families_traces_certify_combos(self):
        """parse→str→parse identity over all family specs × traces × certify
        combos (the store/resume currency must never drift)."""
        checked = 0
        families = [None] + sorted(PROPERTY_FAMILIES)
        for topology, trace, family in itertools.product(
                FAMILY_SPECS, trace_names(), families):
            _assert_round_trips(ScenarioSpec(scheme="cubic", trace=trace,
                                             topology=topology, seed=3))
            _assert_round_trips(ScenarioSpec(
                scheme="canopy", trace=trace, topology=topology, seed=7,
                model_kind="canopy-shallow",
                model_topologies=("single_bottleneck", "chain(2)"),
                property_family=family, certify=True))
            checked += 2
        assert checked == 2 * len(FAMILY_SPECS) * len(trace_names()) * len(families)

    @settings(max_examples=150, deadline=None)
    @given(
        scheme=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_.", min_size=1,
                       max_size=16),
        trace=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
                      max_size=16),
        topology=st.sampled_from(FAMILY_SPECS),
        workload=st.sampled_from(WORKLOAD_SPECS),
        seed=st.integers(min_value=0, max_value=2 ** 31 - 2),
        certify=st.booleans(),
        family=st.sampled_from([None] + sorted(PROPERTY_FAMILIES)),
    )
    def test_fuzzed_specs_round_trip(self, scheme, trace, topology, workload, seed,
                                     certify, family):
        spec = ScenarioSpec(scheme=scheme, trace=trace, topology=topology,
                            workload=workload, seed=seed,
                            model_kind="canopy-deep" if certify else None,
                            property_family=family if certify else None,
                            certify=certify)
        _assert_round_trips(spec)

    def test_derived_seed_stable_and_distinct(self):
        spec_a = ScenarioSpec(scheme="cubic", trace="step-12-48", seed=1)
        spec_b = ScenarioSpec(scheme="cubic", trace="step-12-48", topology="chain(2)", seed=1)
        assert spec_a.derived_seed() == spec_a.derived_seed()
        assert spec_a.derived_seed() != spec_b.derived_seed()
        assert spec_a.derived_seed("replicate", 1) != spec_a.derived_seed("replicate", 2)
        assert 0 <= spec_a.derived_seed() < 2 ** 31 - 1


class TestValidation:
    def test_malformed_tokens_rejected(self):
        for text in ("scheme=cubic trace", "nonsense=1 scheme=cubic trace=t",
                     "scheme=cubic", "trace=t", "scheme=cubic trace=t scheme=c2",
                     "scheme=cubic trace=t certify=maybe"):
            with pytest.raises(ValueError):
                ScenarioSpec.parse(text)

    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scheme="cubic", trace="t", topology="mesh(9)")

    def test_topology_specs_canonicalized(self):
        # Whitespace-padded and default-hop forms name the same topology, so
        # they must share one key (and keep key() whitespace-free).
        padded = ScenarioSpec(scheme="cubic", trace="t", topology="chain( 3 )")
        assert padded.topology == "chain(3)"
        assert padded == ScenarioSpec(scheme="cubic", trace="t", topology="chain(3)")
        assert ScenarioSpec.parse(padded.key()) == padded
        bare = ScenarioSpec(scheme="cubic", trace="t", topology="chain")
        assert bare.topology == "chain(2)"
        catalog = ScenarioSpec(scheme="canopy", trace="t", model_kind="canopy-shallow",
                               model_topologies=("chain", "parking_lot( 2 )"))
        assert catalog.model_topologies == ("chain(2)", "parking_lot(2)")

    def test_workload_specs_canonicalized_and_elided_when_static(self):
        padded = ScenarioSpec(scheme="cubic", trace="t",
                              workload=" responsive( cubic:1 ) ")
        assert padded.workload == "responsive(cubic)"
        assert "workload=responsive(cubic)" in padded.key()
        assert ScenarioSpec.parse(padded.key()) == padded
        # The static default is elided, so every pre-workload key (and store
        # cell) keeps its exact identity.
        static = ScenarioSpec(scheme="cubic", trace="t")
        assert static.workload == "static"
        assert "workload" not in static.key()
        legacy_payload = static.to_json()
        legacy_payload.pop("workload")
        assert ScenarioSpec.from_json(legacy_payload) == static

    def test_bad_workload_rejected(self):
        for bad in ("surge(9)", "poisson()", "responsive(cubic:x)", "step(6-2)",
                    "poisson(-1)", "responsive(quic)"):
            with pytest.raises(ValueError):
                ScenarioSpec(scheme="cubic", trace="t", workload=bad)

    def test_certify_requires_model(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scheme="cubic", trace="t", certify=True)

    def test_model_topologies_require_model(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scheme="cubic", trace="t", model_topologies=("chain(2)",))

    def test_unknown_property_family_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scheme="canopy", trace="t", model_kind="canopy-shallow",
                         property_family="nope")

    def test_whitespace_in_fields_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(scheme="cu bic", trace="t")
        with pytest.raises(ValueError):
            ScenarioSpec(scheme="cubic", trace="a=b")

    def test_from_json_rejects_unknown_fields(self):
        payload = ScenarioSpec(scheme="cubic", trace="t").to_json()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ScenarioSpec.from_json(payload)


class TestReplace:
    def test_replace_revalidates_and_canonicalizes(self):
        spec = ScenarioSpec(scheme="cubic", trace="t")
        moved = spec.replace(topology="chain( 3 )", workload=" poisson( 0.25 ) ")
        assert moved.topology == "chain(3)"
        assert moved.workload == "poisson(0.25)"
        assert spec.topology == "single_bottleneck"  # original untouched

    def test_replace_round_trips_through_key(self):
        spec = ScenarioSpec(scheme="canopy", trace="t", model_kind="canopy-shallow",
                            certify=True, property_family="shallow")
        moved = spec.replace(seed=9, workload="responsive(cubic)")
        assert ScenarioSpec.parse(moved.key()) == moved
        assert moved.replace(seed=spec.seed, workload=spec.workload) == spec

    def test_replace_accepts_key_token_aliases(self):
        spec = ScenarioSpec(scheme="canopy", trace="t", model_kind="canopy-shallow")
        via_alias = spec.replace(model="canopy-deep", family="shallow")
        assert via_alias.model_kind == "canopy-deep"
        assert via_alias.property_family == "shallow"

    def test_replace_rejects_unknown_axis(self):
        spec = ScenarioSpec(scheme="cubic", trace="t")
        with pytest.raises(ValueError, match="workload"):
            spec.replace(bandwidth=12)

    def test_replace_rejects_alias_collision(self):
        spec = ScenarioSpec(scheme="canopy", trace="t", model_kind="canopy-shallow")
        with pytest.raises(ValueError, match="model"):
            spec.replace(model="canopy-deep", model_kind="canopy-deep")

    def test_replace_reruns_validation(self):
        spec = ScenarioSpec(scheme="cubic", trace="t")
        with pytest.raises(ValueError):
            spec.replace(topology="mesh(9)")
        with pytest.raises(ValueError):
            spec.replace(certify=True)  # classical cells cannot certify


class TestSharedParsing:
    def test_parse_topologies_string_and_sequence(self):
        assert parse_topologies(" single_bottleneck, chain(3) ") == \
            ("single_bottleneck", "chain(3)")
        assert parse_topologies(["dumbbell", "parking_lot(2)"]) == \
            ("dumbbell", "parking_lot(2)")

    def test_parse_topologies_validates_each_spec(self):
        with pytest.raises(ValueError):
            parse_topologies("single_bottleneck,mesh(9)")
        with pytest.raises(ValueError):
            parse_topologies(" , ")

    def test_resolve_trace_covers_both_suites(self):
        for name in (SYNTHETIC_TRACE_NAMES[0], CELLULAR_TRACE_NAMES[0]):
            assert resolve_trace(name).name == name
        with pytest.raises(ValueError, match="unknown trace"):
            resolve_trace("not-a-trace")

    def test_trace_subset(self):
        assert [t.name for t in trace_subset("synthetic", 2)] == \
            list(SYNTHETIC_TRACE_NAMES[:2])
        assert len(trace_subset("cellular", 1)) == 1
        with pytest.raises(ValueError, match="trace kind"):
            trace_subset("martian", 1)
