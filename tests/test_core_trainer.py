"""Tests for the Canopy trainer (certification in the loop)."""

import numpy as np
import pytest

from repro.core.config import CanopyConfig
from repro.core.trainer import CanopyTrainer, TrainerConfig


def make_trainer(kind="shallow", **overrides):
    factories = {
        "shallow": CanopyConfig.shallow,
        "deep": CanopyConfig.deep,
        "robust": CanopyConfig.robustness,
        "orca": CanopyConfig.orca_baseline,
    }
    config = factories[kind](seed=2)
    defaults = dict(total_steps=60, log_every=20)
    defaults.update(overrides)
    return CanopyTrainer(config, TrainerConfig(**defaults))


class TestTrainerConfig:
    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            TrainerConfig(total_steps=0)

    def test_invalid_log_every(self):
        with pytest.raises(ValueError):
            TrainerConfig(log_every=0)

    def test_invalid_regularization(self):
        with pytest.raises(ValueError):
            TrainerConfig(regularization_samples=0)
        with pytest.raises(ValueError):
            TrainerConfig(regularization_margin=-1.0)


class TestTraining:
    def test_history_logged_at_requested_cadence(self):
        result = make_trainer().train()
        assert len(result.history) == 3
        assert [log.step for log in result.history] == [20, 40, 60]

    def test_result_carries_agent_and_policy(self):
        result = make_trainer().train()
        policy = result.policy()
        action = policy(np.zeros(result.agent.config.state_dim))
        assert action.shape == (1,)
        assert -1.0 <= float(action[0]) <= 1.0

    def test_rewards_are_finite_and_bounded(self):
        result = make_trainer().train()
        for log in result.history:
            assert np.isfinite(log.raw_reward)
            assert 0.0 <= log.verifier_reward <= 1.0

    def test_env_steps_counted(self):
        result = make_trainer(total_steps=45).train()
        assert result.env_steps == 45
        assert result.steps_per_second > 0.0

    def test_orca_baseline_skips_verifier_shaping(self):
        trainer = make_trainer("orca", use_verifier_reward=False)
        result = trainer.train()
        # Verifier reward is still measured for the training-curve comparison.
        assert all(0.0 <= log.verifier_reward <= 1.0 for log in result.history)

    def test_progress_callback_invoked(self):
        calls = []
        trainer = make_trainer(progress_callback=calls.append)
        trainer.train()
        assert len(calls) == 3
        assert set(calls[0]) >= {"step", "raw_reward", "verifier_reward"}

    def test_reward_curves_shape(self):
        result = make_trainer().train()
        curves = result.reward_curves()
        assert curves["step"].shape == curves["raw"].shape == curves["verifier"].shape

    def test_final_metrics_empty_history(self):
        from repro.core.trainer import TrainingResult

        empty = TrainingResult(config_name="x")
        assert empty.final_metrics()["raw_reward"] == 0.0
        with pytest.raises(RuntimeError):
            empty.policy()

    def test_verifier_seconds_accounted(self):
        result = make_trainer().train()
        assert 0.0 <= result.verifier_seconds <= result.total_seconds

    def test_regularization_changes_actor(self):
        """With property regularization on, training moves the actor's behavior
        toward property satisfaction relative to the Orca baseline."""
        canopy = make_trainer("shallow", total_steps=200, log_every=100).train()
        orca = make_trainer("orca", total_steps=200, log_every=100,
                            use_verifier_reward=False).train()
        assert canopy.history[-1].verifier_reward >= orca.history[-1].verifier_reward - 0.1

    def test_robust_training_runs(self):
        result = make_trainer("robust", total_steps=40, log_every=20).train()
        assert len(result.history) == 2
