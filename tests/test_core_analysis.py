"""Tests for the offline property-satisfaction analysis tools."""

import numpy as np
import pytest

from repro.core.analysis import compare_controllers, property_report, satisfaction_grid
from repro.core.properties import property_p1, property_p5, shallow_buffer_properties
from repro.core.verifier import Verifier, VerifierConfig
from repro.nn import make_actor
from repro.orca.observations import ObservationConfig


@pytest.fixture
def obs_config():
    return ObservationConfig()


def make_verifier(obs_config, bias=None, seed=0):
    actor = make_actor(obs_config.state_dim, hidden_sizes=(8,), rng=np.random.default_rng(seed))
    if bias is not None:
        dense = actor.layers[-2]
        dense.weight[...] = 0.0
        dense.bias[...] = bias
    return Verifier(actor, obs_config, VerifierConfig(n_components=4))


class TestSatisfactionGrid:
    def test_grid_shape_and_bounds(self, obs_config):
        verifier = make_verifier(obs_config)
        grid = satisfaction_grid(verifier, property_p1(), x_values=(0.2, 0.8), y_values=(0.1, 0.5, 0.9),
                                 n_components=3)
        assert grid.feedback.shape == (3, 2)
        assert np.all((grid.feedback >= 0.0) & (grid.feedback <= 1.0))
        assert 0.0 <= grid.mean_feedback <= 1.0
        assert 0.0 <= grid.certified_fraction <= 1.0

    def test_rows_enumeration(self, obs_config):
        verifier = make_verifier(obs_config)
        grid = satisfaction_grid(verifier, property_p1(), x_values=(0.2, 0.8), y_values=(0.3,),
                                 n_components=2)
        rows = grid.to_rows()
        assert len(rows) == 2
        assert set(rows[0]) == {"throughput", "inv_rtt", "feedback"}

    def test_always_increase_policy_fully_certified_for_p1(self, obs_config):
        verifier = make_verifier(obs_config, bias=10.0)  # tanh saturates at +1 => always grow
        grid = satisfaction_grid(verifier, property_p1(), cwnd_tcp=20.0, cwnd_prev=20.0, n_components=3)
        assert grid.certified_fraction == pytest.approx(1.0)

    def test_constant_policy_robust_grid(self, obs_config):
        verifier = make_verifier(obs_config, bias=0.0)
        grid = satisfaction_grid(verifier, property_p5(), n_components=3)
        assert grid.mean_feedback == pytest.approx(1.0)


class TestReports:
    def test_property_report_rows(self, obs_config):
        verifier = make_verifier(obs_config)
        rng = np.random.default_rng(3)
        states = [np.clip(rng.uniform(0, 1, obs_config.state_dim), 0, 1) for _ in range(5)]
        rows = property_report(verifier, shallow_buffer_properties(), states, n_components=3)
        assert {row["property"] for row in rows} == {"P1", "P2"}
        for row in rows:
            assert 0.0 <= row["min_feedback"] <= row["mean_feedback"] <= 1.0
            assert row["n_states"] == 5

    def test_compare_controllers_ordering(self, obs_config):
        always_up = make_verifier(obs_config, bias=10.0)
        always_down = make_verifier(obs_config, bias=-10.0)
        rng = np.random.default_rng(4)
        states = [np.clip(rng.uniform(0, 1, obs_config.state_dim), 0, 1) for _ in range(4)]
        rows = compare_controllers({"up": always_up, "down": always_down},
                                   shallow_buffer_properties(), states,
                                   cwnd_tcp=20.0, cwnd_prev=20.0, n_components=3)
        by_name = {row["controller"]: row for row in rows}
        # The always-increase policy satisfies P1 but violates P2, and vice
        # versa, so both land at ~0.5 mean feedback with symmetric breakdowns.
        assert by_name["up"]["P1_feedback"] == pytest.approx(1.0)
        assert by_name["up"]["P2_feedback"] == pytest.approx(0.0, abs=1e-6)
        assert by_name["down"]["P2_feedback"] == pytest.approx(1.0)
        assert by_name["down"]["P1_feedback"] == pytest.approx(0.0, abs=1e-6)
