"""Tests for the fleet observability plane (:mod:`repro.obs`).

The contract under test has two sides.  The observability side: metric
frames round-trip through ``metrics.jsonl``, rollups compute the right
percentiles, the HTTP surface serves valid Prometheus exposition, and
retention drops raw traces without ever touching a ``tele_*`` summary.  The
determinism side (the wall): running a grid with metrics streaming, an HTTP
server attached, and profilers active produces a store whose rows are
byte-identical to a serial run with observability off.
"""

import json
import urllib.request
from urllib.parse import quote

import pytest

from repro.harness.jsonl import parse_jsonl_tolerant
from repro.harness.registry import REGISTRY
from repro.harness.store import RunStore, SchemaVersionError
from repro.obs.aggregate import (
    fleet_rollup,
    format_phase_table,
    merge_phase_reports,
    percentile,
)
from repro.obs.http import ObsServer, render_exposition, validate_exposition
from repro.obs.metrics import (
    METRICS_FILENAME,
    MetricsJournal,
    MetricsSampler,
    validate_frame,
)
from repro.obs.retention import RetentionPolicy, compact_store
from repro.serve.daemon import serve_experiment
from repro.serve.lease import LeaseJournal
from repro.serve.status import format_status, read_status
from repro.telemetry.profiler import TICK_PHASES, TickProfiler

#: Same cheap classical mini-grid as test_serve: 4 cells, ~2s each simulated.
MINI_GRID = {
    "schemes": ("cubic", "vegas"),
    "topology": ("single_bottleneck",),
    "workload": ("poisson(0.1)",),
    "duration": 2.0,
    "n_traces": 1,
    "seeds": (1, 2),
}

TRACED_GRID = dict(MINI_GRID, schemes=("cubic",), seeds=(1, 2, 3),
                   telemetry="on(10)")


@pytest.fixture(autouse=True)
def _zoo_isolation(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_MODEL_ZOO", str(tmp_path / "zoo"))


def _rows_by_key(store_dir) -> dict:
    return {key: json.dumps(record.row, sort_keys=True)
            for key, record in RunStore(store_dir).load().items()}


def _frame(worker="w0", seq=0, t=0.0, *, cells=0, ticks=0, sim_wall=0.0,
           phase_seconds=None, events=0, kind="frame", **extra):
    frame = {
        "v": 1, "kind": kind, "worker": worker, "seq": seq, "t": t,
        "uptime_s": t, "cells_done": cells, "ticks": ticks,
        "sim_wall_s": sim_wall,
        "phase_seconds": phase_seconds or {phase: 0.0 for phase in TICK_PHASES},
        "telemetry_events": events,
    }
    frame.update(extra)
    return frame


# --------------------------------------------------------------------- #
# Shared tolerant JSONL helper
# --------------------------------------------------------------------- #
class TestParseJsonlTolerant:
    def test_torn_tail_returns_valid_prefix(self):
        text = '{"a": 1}\n{"b": 2}\n{"c":'
        items, valid_bytes, torn = parse_jsonl_tolerant(text, source="t.jsonl")
        assert items == [{"a": 1}, {"b": 2}] and torn
        assert valid_bytes == len('{"a": 1}\n{"b": 2}\n'.encode())

    def test_mid_file_corruption_raises_with_location(self):
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            parse_jsonl_tolerant('{"a": 1}\n{broken}\n{"c": 3}\n',
                                 source="t.jsonl")

    def test_intolerant_exceptions_reraise_with_location(self):
        def parse(payload):
            raise SchemaVersionError("schema v99 from the future")

        with pytest.raises(SchemaVersionError, match=r"t\.jsonl:1"):
            parse_jsonl_tolerant('{"v": 99}\n', source="t.jsonl", parse=parse,
                                 intolerant=(SchemaVersionError,))

    def test_empty_and_blank_lines(self):
        assert parse_jsonl_tolerant("") == ([], 0, False)
        items, _, torn = parse_jsonl_tolerant('\n{"a": 1}\n\n')
        assert items == [{"a": 1}] and not torn


# --------------------------------------------------------------------- #
# Metric frames: sampler, journal, schema
# --------------------------------------------------------------------- #
class TestMetricFrames:
    def test_sampler_frame_roundtrips_through_journal(self, tmp_path):
        clock = iter([100.0, 101.0, 102.0]).__next__
        profiler = TickProfiler()
        profiler.begin()
        profiler.finish()
        sampler = MetricsSampler("w0", profiler=profiler, clock=clock)
        sampler.note_cell_done({"tele_n_events": 7})
        journal = MetricsJournal(tmp_path)
        journal.append(sampler.sample(current_key="cell-a"))
        journal.append(sampler.sample())
        frames = journal.read()
        assert [frame["seq"] for frame in frames] == [0, 1]
        assert frames[0]["cells_done"] == 1
        assert frames[0]["telemetry_events"] == 7
        assert frames[0]["current_key"] == "cell-a"
        assert frames[1]["current_key"] is None
        assert frames[0]["ticks"] == profiler.ticks
        # Journal lines are canonical sorted-keys JSON.
        first = (tmp_path / METRICS_FILENAME).read_text().splitlines()[0]
        assert first == json.dumps(json.loads(first), sort_keys=True)

    def test_counts_raw_telemetry_event_lists_too(self):
        sampler = MetricsSampler("w0", clock=lambda: 0.0)
        sampler.note_cell_done({"telemetry_events": [{"e": 1}, {"e": 2}]})
        assert sampler.sample()["telemetry_events"] == 2

    def test_invalid_frame_is_rejected(self, tmp_path):
        journal = MetricsJournal(tmp_path)
        with pytest.raises(ValueError, match="missing required key"):
            journal.append({"v": 1, "kind": "frame"})  # missing counters
        validate_frame(_frame())  # the minimal well-formed frame passes

    def test_torn_tail_tolerated(self, tmp_path):
        journal = MetricsJournal(tmp_path)
        journal.append(_frame(seq=0))
        journal.append(_frame(seq=1, t=1.0))
        with (tmp_path / METRICS_FILENAME).open("a") as handle:
            handle.write('{"v": 1, "kind": "fra')  # torn mid-append
        assert [frame["seq"] for frame in journal.read()] == [0, 1]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert MetricsJournal(tmp_path / "nowhere").read() == []


# --------------------------------------------------------------------- #
# Rollup math
# --------------------------------------------------------------------- #
class TestRollups:
    def test_percentile_linear_interpolation(self):
        assert percentile([], 50) == 0.0
        assert percentile([4.0], 99) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        assert percentile(list(range(101)), 99) == pytest.approx(99.0)

    def test_latency_percentiles_from_cumulative_frames(self):
        # Worker ticks 10 per frame; drain cost per tick alternates 1ms/3ms.
        phase = {p: 0.0 for p in TICK_PHASES}
        frames = []
        drain_total = 0.0
        for i, per_tick in enumerate([0.001, 0.003, 0.001, 0.003]):
            drain_total += per_tick * 10
            frames.append(_frame(seq=i, t=float(i), ticks=(i + 1) * 10,
                                 phase_seconds=dict(phase, drain=drain_total)))
        roll = fleet_rollup(frames)["workers"]["w0"]
        drain = roll["phase_latency_ms"]["drain"]
        assert drain["n"] == 4
        assert drain["p50"] == pytest.approx(2.0)   # median of 1,3,1,3 ms
        assert drain["p99"] == pytest.approx(3.0, abs=0.1)
        assert roll["ticks"] == 40

    def test_fleet_totals_and_trend(self):
        frames = [_frame("w0", 0, 0.0, cells=0), _frame("w1", 0, 0.0, cells=0),
                  _frame("w0", 1, 5.0, cells=4), _frame("w1", 1, 10.0, cells=6)]
        fleet = fleet_rollup(frames)["fleet"]
        assert fleet["workers"] == 2 and fleet["cells_done"] == 10
        assert fleet["cells_per_sec"] == pytest.approx(1.0)  # 10 cells / 10 s
        trend = fleet["throughput_trend"]
        # Instantaneous fleet rate between frame times: 4 cells in the first
        # 5 s window, then 6 more in the next.
        assert [point["cells_per_sec"] for point in trend] == \
            pytest.approx([0.8, 1.2])

    def test_rollup_line_is_baseline_not_sample(self):
        # A compaction rollup contributes totals but no latency samples.
        phase = {p: 0.0 for p in TICK_PHASES}
        folded = _frame(kind="rollup", seq=5, seq_last=5, t=5.0, frames=6,
                        cells=3, ticks=30, t_first=0.0,
                        phase_seconds=dict(phase, drain=0.030),
                        phase_latency_ms={})
        live = _frame(seq=6, t=6.0, cells=4, ticks=40,
                      phase_seconds=dict(phase, drain=0.050))
        roll = fleet_rollup([folded, live])["workers"]["w0"]
        assert roll["frames"] == 7  # 6 folded + 1 raw
        drain = roll["phase_latency_ms"]["drain"]
        # Only the rollup→live delta: (50-30)ms over 10 ticks = 2ms/tick.
        assert drain["n"] == 1 and drain["p50"] == pytest.approx(2.0)

    def test_merge_phase_reports_and_table(self):
        reports = [
            {"ticks": 10, "total_seconds": 1.0, "inject_s": 0.2, "drain_s": 0.3},
            {"ticks": 30, "total_seconds": 1.0, "inject_s": 0.2, "drain_s": 0.3},
        ]
        merged = merge_phase_reports(reports)
        assert merged["ticks"] == 40 and merged["ticks_per_sec"] == 20.0
        assert merged["inject_s"] == pytest.approx(0.4)
        assert merged["inject_frac"] == pytest.approx(0.4)  # of 1.0s charged
        table = format_phase_table(merged)
        assert "ticks: 40 in 2.000s" in table
        for phase in TICK_PHASES:
            assert phase in table


# --------------------------------------------------------------------- #
# HTTP surface and exposition format
# --------------------------------------------------------------------- #
class TestExposition:
    def test_validator_accepts_render_and_rejects_malformations(self, tmp_path):
        MetricsJournal(tmp_path).append(_frame(cells=2, ticks=20, sim_wall=0.1))
        report = validate_exposition(render_exposition(tmp_path))
        assert report["families"] >= 3 and report["samples"] >= 5

        with pytest.raises(ValueError, match="TYPE"):
            validate_exposition("untyped_metric 1.0\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_exposition("# TYPE h histogram\n"
                                'h_bucket{le="0.1"} 1\nh_sum 0.1\nh_count 1\n')
        with pytest.raises(ValueError, match="malformed sample"):
            validate_exposition("# TYPE g gauge\ng{unclosed 1.0\n")


class TestHttpSurface:
    def test_status_metrics_and_cells_endpoints(self, tmp_path):
        store = tmp_path / "served"
        serve_experiment("workload_stress", MINI_GRID, store=store,
                         workers=0, metrics_interval=1.0)
        server = ObsServer(store, port=0).start()
        try:
            status = json.load(urllib.request.urlopen(server.url("/status")))
            assert status["completed"] == 4 and not status["running"]

            response = urllib.request.urlopen(server.url("/metrics"))
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
            validate_exposition(text)
            assert 'repro_serve_cells{state="completed"} 4' in text
            assert "repro_tick_phase_latency_seconds_bucket" in text

            key = next(iter(RunStore(store).load()))
            cell = json.load(urllib.request.urlopen(
                server.url("/cells/" + quote(key, safe=""))))
            assert cell["key"] == key and "row" in cell

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url("/cells/no-such-cell"))
            assert err.value.code == 404
        finally:
            server.close()


# --------------------------------------------------------------------- #
# The determinism wall
# --------------------------------------------------------------------- #
class TestDeterminismWall:
    def test_observed_serve_is_byte_identical_to_dark_serial(self, tmp_path):
        """Metrics stream + HTTP server + worker profilers change nothing in
        the rows: the served store diffs clean against a serial run with
        observability off."""
        REGISTRY.run("workload_stress", MINI_GRID, n_jobs=1,
                     store=RunStore(tmp_path / "serial"))
        served = serve_experiment("workload_stress", MINI_GRID,
                                  store=tmp_path / "served", workers=2,
                                  timeout_s=300.0, metrics_interval=0.2,
                                  http_port=0)
        assert served["metrics_frames"] >= 1
        assert served["http_port"] is not None
        assert _rows_by_key(tmp_path / "serial") == _rows_by_key(tmp_path / "served")
        # The stream landed next to (not inside) the records journal.
        assert (tmp_path / "served" / METRICS_FILENAME).exists()

    def test_profiled_run_rows_match_unprofiled(self, tmp_path):
        baseline = REGISTRY.run("workload_stress", MINI_GRID, n_jobs=1,
                                store=RunStore(tmp_path / "dark"))
        profiled = REGISTRY.run("workload_stress", MINI_GRID, n_jobs=1,
                                store=RunStore(tmp_path / "lit"), profile=True)
        assert profiled["rows"] == baseline["rows"]
        assert _rows_by_key(tmp_path / "dark") == _rows_by_key(tmp_path / "lit")
        assert profiled["profile"]["ticks"] > 0
        assert MetricsJournal(tmp_path / "lit").read()


# --------------------------------------------------------------------- #
# Retention / compaction
# --------------------------------------------------------------------- #
class TestRetention:
    def _traced_store(self, tmp_path):
        store = RunStore(tmp_path / "store")
        REGISTRY.run("workload_stress", TRACED_GRID, n_jobs=1, store=store,
                     profile=True)
        return store

    def test_tele_summaries_survive_trace_drop(self, tmp_path):
        store = self._traced_store(tmp_path)
        before = RunStore(store.path).load()
        assert sum(1 for r in before.values() if r.row.get("telemetry_events")) == 3
        report = compact_store(store.path, RetentionPolicy(keep_traces=1))
        assert report["traces_dropped"] == 2 and report["traces_kept"] == 1
        after = RunStore(store.path).load()
        dropped = [r for r in after.values()
                   if r.row.get("telemetry_events_dropped")]
        assert len(dropped) == 2
        assert all("telemetry_events" not in r.row for r in dropped)
        for key, record in after.items():
            for tele_key in (k for k in before[key].row if k.startswith("tele_")):
                assert record.row[tele_key] == before[key].row[tele_key]

    def test_counterexample_referenced_traces_are_pinned(self, tmp_path):
        store = self._traced_store(tmp_path)
        keys = sorted(RunStore(store.path).load())
        pinned = keys[0]  # oldest: would be dropped first without the pin
        cx_dir = store.path / "counterexamples"
        cx_dir.mkdir()
        entry = {"id": "cx-0", "key": pinned, "objective": "fallback_storm",
                 "threshold": 0.5, "task": {}}
        (cx_dir / "counterexamples.jsonl").write_text(
            json.dumps(entry, sort_keys=True) + "\n")
        report = compact_store(store.path, RetentionPolicy(keep_traces=0))
        assert report["protected_kept"] == 1
        after = RunStore(store.path).load()
        assert after[pinned].row.get("telemetry_events")
        assert all("telemetry_events" not in r.row
                   for k, r in after.items() if k != pinned)

    def test_byte_budget_drops_oldest_first(self, tmp_path):
        store = self._traced_store(tmp_path)
        report = compact_store(store.path,
                               RetentionPolicy(max_trace_bytes=1))
        assert report["traces_dropped"] == 3
        assert report["trace_bytes_dropped"] > 0

    def test_metric_frames_fold_into_rollup_segments(self, tmp_path):
        journal = MetricsJournal(tmp_path)
        for i in range(6):
            journal.append(_frame(seq=i, t=float(i), cells=i, ticks=i * 10,
                                  sim_wall=i * 0.1))
        report = compact_store(tmp_path, RetentionPolicy(keep_frames=2))
        assert report["frames_folded"] == 4 and report["lines_after"] == 3
        frames = journal.read()
        rollups = [f for f in frames if f.get("kind") == "rollup"]
        assert len(rollups) == 1 and rollups[0]["frames"] == 4
        # Aggregation over the compacted stream keeps the cumulative truth.
        fleet = fleet_rollup(frames)["fleet"]
        assert fleet["frames"] == 6 and fleet["cells_done"] == 5
        assert fleet["ticks"] == 50
        # Compacting again folds the rollup plus older raws into one line.
        journal.append(_frame(seq=6, t=6.0, cells=6, ticks=60, sim_wall=0.6))
        compact_store(tmp_path, RetentionPolicy(keep_frames=1))
        again = journal.read()
        assert sum(1 for f in again if f.get("kind") == "rollup") == 1
        assert fleet_rollup(again)["fleet"]["frames"] == 7

    def test_compaction_is_audited(self, tmp_path):
        store = self._traced_store(tmp_path)
        compact_store(store.path, RetentionPolicy(keep_traces=1, keep_frames=1))
        audit_lines = (store.path / "compactions.jsonl").read_text().splitlines()
        audit = json.loads(audit_lines[-1])
        assert audit["event"] == "compact"
        assert audit["policy"]["keep_traces"] == 1
        assert 0.0 < audit["compaction_ratio"] <= 1.0
        # Compacted records still load and re-validate cleanly.
        assert len(RunStore(store.path).load()) == 3


# --------------------------------------------------------------------- #
# Status regression: zero completed cells
# --------------------------------------------------------------------- #
class TestStatusZeroCompleted:
    def test_no_misleading_throughput_before_first_cell(self, tmp_path):
        journal = LeaseJournal(tmp_path)
        journal.append("serve_start", experiment="toy", cells=4, cached=0,
                       pending=4, workers=2, ttl_s=5.0, pid=1)
        journal.append("lease", key="cell-a", worker="w0")
        status = read_status(tmp_path, now=journal.clock() + 10.0
                             if callable(getattr(journal, "clock", None))
                             else None)
        assert status["completed"] == 0
        assert status["cells_per_sec"] == 0.0
        rendered = format_status(status)
        assert "n/a" in rendered
        assert "0.00 cells/s" not in rendered
