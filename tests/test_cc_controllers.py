"""Tests for the classical congestion controllers (Cubic, NewReno, Vegas, BBR)."""

import numpy as np
import pytest

from repro.cc.base import MIN_CWND, TickFeedback
from repro.cc.bbr import BBRController
from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.netsim import NetworkSimulator
from repro.cc.newreno import NewRenoController
from repro.cc.vegas import VegasController
from repro.traces.trace import BandwidthTrace, mbps_to_pps

ALL_CONTROLLERS = [CubicController, NewRenoController, VegasController, BBRController]


def feedback(now=1.0, acked=5.0, lost=0.0, rtt=0.05, min_rtt=0.05, delay=0.0,
             inflight=10.0, rate=100.0, dt=0.01):
    return TickFeedback(now=now, dt=dt, acked=acked, lost=lost, rtt=rtt, min_rtt=min_rtt,
                        queuing_delay=delay, inflight=inflight, delivery_rate=rate)


def run_on_link(controller, mbps=24.0, min_rtt=0.04, buffer_bdp=1.0, duration=10.0):
    trace = BandwidthTrace.constant(mbps, duration=duration + 5)
    link = BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=buffer_bdp)
    sim = NetworkSimulator(link, [Flow(0, controller)], dt=0.01)
    return sim.run(duration)


class TestGenericBehaviour:
    @pytest.mark.parametrize("controller_cls", ALL_CONTROLLERS)
    def test_acks_grow_window_from_start(self, controller_cls):
        controller = controller_cls(initial_cwnd=10.0)
        start = controller.cwnd
        now = 0.0
        for _ in range(50):
            now += 0.01
            # A healthy delivery rate (500 pkt/s at 50 ms RTT => BDP of 25
            # packets) so rate-based controllers also have room to grow.
            controller.on_tick(feedback(now=now, acked=5.0, rate=500.0))
        assert controller.cwnd > start

    @pytest.mark.parametrize("controller_cls", ALL_CONTROLLERS)
    def test_window_never_below_minimum(self, controller_cls):
        controller = controller_cls(initial_cwnd=2.0)
        now = 0.0
        for _ in range(100):
            now += 0.05
            controller.on_tick(feedback(now=now, acked=1.0, lost=5.0, rtt=0.5, delay=0.4))
        assert controller.cwnd >= MIN_CWND

    @pytest.mark.parametrize("controller_cls", ALL_CONTROLLERS)
    def test_reset_restores_initial_window(self, controller_cls):
        controller = controller_cls(initial_cwnd=10.0)
        for i in range(20):
            controller.on_tick(feedback(now=0.01 * (i + 1), acked=10.0))
        controller.reset()
        assert controller.cwnd == pytest.approx(10.0)

    @pytest.mark.parametrize("controller_cls", ALL_CONTROLLERS)
    def test_reasonable_utilization_on_simulated_link(self, controller_cls):
        result = run_on_link(controller_cls(), mbps=24.0, buffer_bdp=1.0)
        stats = result.stats_for(0)
        delivered = stats.acked[300:].sum() / (stats.acked[300:].size * result.dt)
        assert delivered > 0.5 * mbps_to_pps(24.0)


class TestNewReno:
    def test_loss_halves_window(self):
        controller = NewRenoController(initial_cwnd=40.0, ssthresh=20.0)
        controller.on_tick(feedback(now=1.0, acked=0.0, lost=3.0))
        assert controller.cwnd == pytest.approx(20.0)

    def test_loss_reaction_cooldown(self):
        controller = NewRenoController(initial_cwnd=40.0, ssthresh=20.0)
        controller.on_tick(feedback(now=1.0, lost=3.0, rtt=0.1))
        after_first = controller.cwnd
        controller.on_tick(feedback(now=1.05, acked=0.0, lost=3.0, rtt=0.1))  # within one RTT
        assert controller.cwnd == pytest.approx(after_first)

    def test_slow_start_exponential_vs_ca_linear(self):
        slow = NewRenoController(initial_cwnd=10.0, ssthresh=1000.0)
        ca = NewRenoController(initial_cwnd=10.0, ssthresh=5.0)
        slow.on_tick(feedback(acked=10.0))
        ca.on_tick(feedback(acked=10.0))
        assert slow.cwnd - 10.0 > ca.cwnd - 10.0


class TestCubic:
    def test_loss_applies_beta(self):
        controller = CubicController(initial_cwnd=100.0, ssthresh=50.0)
        controller.on_tick(feedback(now=1.0, lost=2.0))
        assert controller.cwnd == pytest.approx(100.0 * CubicController.BETA)

    def test_fast_convergence_lowers_w_last_max(self):
        controller = CubicController(initial_cwnd=100.0, ssthresh=50.0)
        controller._w_last_max = 200.0
        controller.on_tick(feedback(now=1.0, lost=2.0))
        assert controller._w_last_max < 200.0

    def test_cubic_growth_accelerates_away_from_wmax(self):
        controller = CubicController(initial_cwnd=50.0, ssthresh=10.0)
        controller.on_tick(feedback(now=1.0, lost=2.0))  # sets w_max = 50
        window_after_loss = controller.cwnd
        now = 1.0
        early_growth = None
        for i in range(200):
            now += 0.01
            controller.on_tick(feedback(now=now, acked=5.0, rtt=0.05))
            if i == 20:
                early_growth = controller.cwnd - window_after_loss
        late_growth = controller.cwnd - window_after_loss
        assert late_growth > early_growth > 0

    def test_set_cwnd_reanchors_epoch(self):
        controller = CubicController(initial_cwnd=50.0, ssthresh=10.0)
        controller.on_tick(feedback(now=1.0, acked=5.0))
        controller.set_cwnd(80.0)
        assert controller.cwnd == pytest.approx(80.0)
        assert controller._epoch_start is None


class TestVegas:
    def test_invalid_alpha_beta(self):
        with pytest.raises(ValueError):
            VegasController(alpha=3.0, beta=2.0)

    def test_increases_when_queue_below_alpha(self):
        controller = VegasController(initial_cwnd=20.0, ssthresh=10.0)
        before = controller.cwnd
        controller.on_tick(feedback(now=1.0, acked=20.0, rtt=0.05, min_rtt=0.05))
        assert controller.cwnd > before

    def test_decreases_when_queue_above_beta(self):
        controller = VegasController(initial_cwnd=50.0, ssthresh=10.0)
        controller.on_tick(feedback(now=0.5, acked=1.0, rtt=0.05, min_rtt=0.05))  # learn base RTT
        before = controller.cwnd
        # RTT doubled => about cwnd/2 packets queued, far above beta.
        controller.on_tick(feedback(now=1.0, acked=50.0, rtt=0.10, min_rtt=0.05))
        assert controller.cwnd < before

    def test_keeps_low_delay_on_deep_buffer_link(self):
        result = run_on_link(VegasController(), mbps=24.0, buffer_bdp=5.0)
        stats = result.stats_for(0)
        mask = stats.acked > 0
        avg_delay = np.average(stats.queuing_delay[mask], weights=stats.acked[mask])
        # Vegas targets a few packets of queue: delay stays well below the 5 BDP bound.
        assert avg_delay < 5 * 0.04 * 0.5


class TestBBR:
    def test_startup_grows_quickly(self):
        controller = BBRController(initial_cwnd=10.0)
        now = 0.0
        for _ in range(30):
            now += 0.01
            controller.on_tick(feedback(now=now, acked=10.0, rate=500.0))
        assert controller.cwnd > 10.0
        assert controller._mode in ("startup", "probe_bw")

    def test_exits_startup_when_bandwidth_plateaus(self):
        controller = BBRController(initial_cwnd=10.0)
        now = 0.0
        for _ in range(100):
            now += 0.05
            controller.on_tick(feedback(now=now, acked=10.0, rate=300.0, rtt=0.05))
        assert controller._mode != "startup"

    def test_cwnd_tracks_bdp_in_probe_bw(self):
        controller = BBRController(initial_cwnd=10.0)
        now = 0.0
        for _ in range(200):
            now += 0.05
            controller.on_tick(feedback(now=now, acked=10.0, rate=200.0, rtt=0.1, min_rtt=0.1))
        if controller._mode == "probe_bw":
            assert controller.cwnd == pytest.approx(BBRController.CWND_GAIN * 200.0 * 0.1, rel=0.3)

    def test_pacing_rate_none_before_estimate(self):
        assert BBRController().pacing_rate() is None

    def test_pacing_rate_positive_after_samples(self):
        controller = BBRController()
        controller.on_tick(feedback(now=0.05, acked=10.0, rate=100.0))
        assert controller.pacing_rate() > 0.0
