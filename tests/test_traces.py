"""Tests for bandwidth traces: container, synthetic suite, cellular, WAN profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.cellular import CELLULAR_TRACE_NAMES, cellular_trace_suite, make_cellular_trace
from repro.traces.realworld import intercontinental_profiles, intracontinental_profiles
from repro.traces.synthetic import SYNTHETIC_TRACE_NAMES, make_synthetic_trace, synthetic_trace_suite
from repro.traces.trace import BandwidthTrace, mbps_to_pps, pps_to_mbps, read_mahimahi_trace, write_mahimahi_trace


class TestBandwidthTrace:
    def test_constant_trace(self):
        trace = BandwidthTrace.constant(48.0, duration=10.0)
        assert trace.capacity_mbps(0.0) == pytest.approx(48.0)
        assert trace.capacity_mbps(9.9) == pytest.approx(48.0)
        assert trace.mean_mbps == pytest.approx(48.0)

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace("bad", [])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace("bad", [(0.0, 10.0)])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTrace("bad", [(1.0, -5.0)])

    def test_segment_lookup(self):
        trace = BandwidthTrace("steps", [(1.0, 10.0), (1.0, 20.0), (1.0, 30.0)])
        assert trace.capacity_mbps(0.5) == pytest.approx(10.0)
        assert trace.capacity_mbps(1.5) == pytest.approx(20.0)
        assert trace.capacity_mbps(2.5) == pytest.approx(30.0)

    def test_loop_wraps_around(self):
        trace = BandwidthTrace("loop", [(1.0, 10.0), (1.0, 20.0)], loop=True)
        assert trace.capacity_mbps(2.5) == pytest.approx(10.0)

    def test_no_loop_holds_last_value(self):
        trace = BandwidthTrace("hold", [(1.0, 10.0), (1.0, 20.0)], loop=False)
        assert trace.capacity_mbps(5.0) == pytest.approx(20.0)

    def test_negative_time_rejected(self):
        trace = BandwidthTrace.constant(10.0)
        with pytest.raises(ValueError):
            trace.capacity_mbps(-1.0)

    def test_mean_min_max(self):
        trace = BandwidthTrace("mix", [(1.0, 10.0), (3.0, 30.0)])
        assert trace.min_mbps == pytest.approx(10.0)
        assert trace.max_mbps == pytest.approx(30.0)
        assert trace.mean_mbps == pytest.approx((10.0 + 90.0) / 4.0)

    def test_unit_conversion_round_trip(self):
        assert pps_to_mbps(mbps_to_pps(48.0)) == pytest.approx(48.0)

    def test_bdp_packets(self):
        trace = BandwidthTrace.constant(12.0)
        bdp = trace.bdp_packets(0.1)
        assert bdp == pytest.approx(mbps_to_pps(12.0) * 0.1)

    def test_bdp_invalid_rtt(self):
        with pytest.raises(ValueError):
            BandwidthTrace.constant(12.0).bdp_packets(0.0)

    def test_scaled(self):
        trace = BandwidthTrace.constant(10.0).scaled(2.0)
        assert trace.mean_mbps == pytest.approx(20.0)
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_sample_length(self):
        trace = BandwidthTrace.constant(10.0, duration=2.0)
        samples = trace.sample(0.5)
        assert samples.shape == (4,)


class TestMahimahiFormat:
    def test_round_trip(self, tmp_path):
        trace = BandwidthTrace("rt", [(0.5, 12.0), (0.5, 24.0)])
        path = tmp_path / "trace.mm"
        write_mahimahi_trace(trace, path, duration=1.0)
        loaded = read_mahimahi_trace(path, bucket_ms=100.0)
        # Average rate should be preserved to within the packet-granularity error.
        assert loaded.mean_mbps == pytest.approx(trace.mean_mbps, rel=0.15)

    def test_read_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.mm"
        path.write_text("\n")
        with pytest.raises(ValueError):
            read_mahimahi_trace(path)


class TestSyntheticSuite:
    def test_suite_has_18_traces(self):
        assert len(SYNTHETIC_TRACE_NAMES) == 18
        assert len(synthetic_trace_suite()) == 18

    def test_subset(self):
        assert len(synthetic_trace_suite(subset=5)) == 5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_synthetic_trace("no-such-trace")

    @pytest.mark.parametrize("name", SYNTHETIC_TRACE_NAMES)
    def test_each_trace_is_well_formed(self, name):
        trace = make_synthetic_trace(name)
        assert trace.duration >= 25.0
        assert trace.min_mbps >= 1.0
        assert trace.max_mbps <= 200.0

    def test_traces_vary_over_time(self):
        for name in ("step-12-48", "sawtooth-12-60", "flux-mid"):
            trace = make_synthetic_trace(name)
            samples = trace.sample(0.5)
            assert samples.std() > 1.0

    def test_deterministic_generation(self):
        a = make_synthetic_trace("flux-high").sample(0.5)
        b = make_synthetic_trace("flux-high").sample(0.5)
        assert np.allclose(a, b)


class TestCellularSuite:
    def test_three_carriers(self):
        assert len(CELLULAR_TRACE_NAMES) == 3
        assert len(cellular_trace_suite()) == 3

    def test_unknown_carrier_raises(self):
        with pytest.raises(KeyError):
            make_cellular_trace("cellular-nokia")

    @pytest.mark.parametrize("name", CELLULAR_TRACE_NAMES)
    def test_high_variability(self, name):
        trace = make_cellular_trace(name, duration=20.0)
        samples = trace.sample(0.1)
        assert samples.std() / samples.mean() > 0.2  # strongly variable
        assert samples.min() >= 0.1

    def test_deterministic(self):
        a = make_cellular_trace("cellular-att").sample(0.1, duration=5.0)
        b = make_cellular_trace("cellular-att").sample(0.1, duration=5.0)
        assert np.allclose(a, b)


class TestWANProfiles:
    def test_categories_and_counts(self):
        intra = intracontinental_profiles()
        inter = intercontinental_profiles()
        assert len(intra) == 4
        assert len(inter) == 5
        assert all(p.category == "intra" for p in intra)
        assert all(p.category == "inter" for p in inter)

    def test_rtt_span_matches_paper_range(self):
        rtts = [p.rtt_ms for p in intracontinental_profiles() + intercontinental_profiles()]
        assert min(rtts) >= 20.0
        assert max(rtts) <= 240.0

    def test_profile_trace_generation(self):
        profile = intercontinental_profiles()[0]
        trace = profile.make_trace(duration=5.0)
        assert trace.duration >= 4.9
        assert trace.mean_mbps > 1.0
        assert profile.min_rtt_s == pytest.approx(profile.rtt_ms / 1000.0)


@given(st.lists(st.tuples(st.floats(0.1, 5.0), st.floats(0.0, 200.0)), min_size=1, max_size=10),
       st.floats(0.0, 100.0))
@settings(max_examples=40, deadline=None)
def test_capacity_lookup_always_within_trace_bounds(segments, time):
    trace = BandwidthTrace("prop", segments)
    value = trace.capacity_mbps(time)
    assert trace.min_mbps - 1e-9 <= value <= trace.max_mbps + 1e-9
