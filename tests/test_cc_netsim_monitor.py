"""Regression tests for NetworkSimulator.monitor_report edge cases.

Pinned behaviours:

* the reporting interval is clamped to at least one tick (``interval >= dt``),
  so the very first report (and back-to-back reports) cannot divide by ~0;
* the per-flow accumulators are reset after every report — each report covers
  only its own interval;
* when no acks arrived during the interval, ``avg_rtt`` falls back to the
  flow's smoothed RTT instead of reporting a bogus 0/0 average.
"""

import pytest

from repro.cc.base import CongestionController, TickFeedback
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.netsim import NetworkSimulator
from repro.traces.trace import BandwidthTrace


class FixedWindowController(CongestionController):
    """Keeps a constant congestion window (for deterministic tests)."""

    name = "fixed"

    def on_tick(self, feedback: TickFeedback) -> None:  # pragma: no cover - trivial
        pass


def make_sim(mbps=12.0, min_rtt=0.05, buffer_bdp=2.0, cwnd=20.0, dt=0.01):
    trace = BandwidthTrace.constant(mbps, duration=120.0)
    link = BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=buffer_bdp)
    return NetworkSimulator(link, [Flow(0, FixedWindowController(cwnd))], dt=dt)


class TestIntervalClamp:
    def test_first_report_interval_clamped_to_dt(self):
        sim = make_sim(dt=0.02)
        report = sim.monitor_report(0)  # before any tick: now == last_report == 0
        assert report.interval == pytest.approx(0.02)
        assert report.throughput_pps == 0.0

    def test_back_to_back_reports_keep_dt_floor(self):
        sim = make_sim(dt=0.01)
        for _ in range(30):
            sim.tick()
        sim.monitor_report(0)
        immediate = sim.monitor_report(0)  # zero elapsed time since last report
        assert immediate.interval == pytest.approx(0.01)

    def test_interval_tracks_elapsed_time_after_first_report(self):
        sim = make_sim(dt=0.01)
        for _ in range(25):
            sim.tick()
        assert sim.monitor_report(0).interval == pytest.approx(0.25)
        for _ in range(10):
            sim.tick()
        assert sim.monitor_report(0).interval == pytest.approx(0.10)


class TestAccumulatorReset:
    def test_accumulators_reset_after_report(self):
        sim = make_sim()
        for _ in range(100):  # 1 s: plenty of deliveries at 12 Mbps / 50 ms RTT
            sim.tick()
        first = sim.monitor_report(0)
        assert first.n_acks > 0
        assert first.throughput_pps > 0

        second = sim.monitor_report(0)  # immediately after: nothing accumulated
        assert second.n_acks == 0.0
        assert second.throughput_pps == 0.0
        assert second.loss_rate == 0.0
        assert second.avg_queuing_delay == 0.0
        assert second.sent_pps == 0.0

    def test_second_interval_only_counts_new_traffic(self):
        sim = make_sim()
        for _ in range(100):
            sim.tick()
        total_before = sim.monitor_report(0).n_acks
        for _ in range(20):
            sim.tick()
        follow_up = sim.monitor_report(0)
        # The follow-up report covers only the 0.2 s since the reset, so it
        # must count (far) fewer acks than the full first second.
        assert 0 < follow_up.n_acks < total_before


class TestZeroAckFallbacks:
    def test_avg_rtt_falls_back_to_srtt_before_any_ack(self):
        sim = make_sim(min_rtt=0.05, dt=0.01)
        sim.tick()  # one tick < propagation RTT: packets sent, none acked yet
        report = sim.monitor_report(0)
        flow = sim.flows[0]
        assert report.n_acks == 0.0
        assert flow.srtt == 0.0
        assert report.avg_rtt == flow.srtt

    def test_avg_rtt_falls_back_to_current_srtt_after_quiet_interval(self):
        sim = make_sim()
        for _ in range(100):
            sim.tick()
        sim.monitor_report(0)  # reset accumulators; srtt is now established
        flow = sim.flows[0]
        assert flow.srtt > 0.0
        quiet = sim.monitor_report(0)  # no new acks since the reset
        assert quiet.n_acks == 0.0
        assert quiet.avg_rtt == pytest.approx(flow.srtt)

    def test_loss_rate_zero_when_nothing_happened(self):
        sim = make_sim()
        report = sim.monitor_report(0)
        assert report.loss_rate == 0.0
        assert report.avg_queuing_delay == 0.0
