"""Per-hop propagation physics: transit timing, ack bounds, conservation.

The invariant suites the ISSUE pins down for the in-flight transit stage
(:mod:`repro.topology.transit`):

* a chunk forwarded out of hop *i* reaches hop *i+1*'s FIFO only after hop
  *i*'s forward ``delay / 2`` share — no chunk crosses a multi-hop DAG inside
  one tick anymore;
* the first ack of any flow arrives no earlier than ``start_time + path
  RTT``, on every topology family and for churned arrivals;
* tick-level conservation: at *every* tick, per flow,
  ``sent == acked + lost + queued + in-transit + notifications-in-flight`` —
  the in-transit bucket is new, the others are the classic ones;
* downstream transit drops notify the sender after the return delay from the
  drop hop (the forward delay was already incurred in simulation time), not
  a full smoothed-RTT guess;
* churned multi-hop grids stay bit-identical between serial and sharded runs
  with transit queues active.
"""

import numpy as np
import pytest

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.netsim import NetworkSimulator
from repro.topology import Link, Topology, TransitQueue, build_topology, topology_family_specs
from repro.traces.trace import BandwidthTrace
from repro.workload.build import build_workload

DT = 0.01


class FixedWindowController(CubicController):
    """A window that never moves: deterministic load for timing assertions."""

    def __init__(self, cwnd=20.0):
        super().__init__(initial_cwnd=cwnd)

    def on_tick(self, feedback):  # pragma: no cover - trivial
        pass


def constant_trace(mbps=24.0, duration=120.0, name="const"):
    return BandwidthTrace.constant(mbps, duration=duration, name=name)


def flow_queued_packets(sim):
    """Per-flow packets sitting in any hop FIFO of the topology."""
    queued = {}
    for link in sim.topology.ordered_links:
        for fid, packets in link.queue.per_flow_occupancy().items():
            queued[fid] = queued.get(fid, 0.0) + packets
    return queued


def assert_tick_conservation(sim):
    """sent == acked + lost + queued + in-transit + notifications, per flow."""
    queued = flow_queued_packets(sim)
    transit = sim.in_transit_per_flow()
    for fid, flow in sim.flows.items():
        accounted = (flow.total_acked + flow.total_lost
                     + queued.get(fid, 0.0) + transit.get(fid, 0.0)
                     + flow.pending_ack_packets + flow.pending_loss_packets)
        assert flow.total_sent == pytest.approx(accounted, abs=1e-9), (
            f"flow {fid}: sent {flow.total_sent} != accounted {accounted}")


# ---------------------------------------------------------------------- #
# TransitQueue unit semantics
# ---------------------------------------------------------------------- #
class TestTransitQueue:
    def test_chunks_release_only_after_eligibility(self):
        transit = TransitQueue()
        transit.send("hop2", 0, 5.0, 0.0, eligible_time=0.03)
        assert transit.arrivals("hop2", 0.0) == []
        assert transit.arrivals("hop2", 0.02) == []
        (chunk,) = transit.arrivals("hop2", 0.03)
        assert chunk.packets == 5.0
        assert transit.occupancy == 0.0

    def test_release_order_is_time_then_sequence(self):
        # Chunks from different source hops (fan-in) interleave by eligibility
        # time; equal times resolve by send order — deterministic always.
        transit = TransitQueue()
        transit.send("root", 0, 1.0, 0.0, eligible_time=0.05)
        transit.send("root", 1, 2.0, 0.0, eligible_time=0.02)
        transit.send("root", 2, 3.0, 0.0, eligible_time=0.05)
        order = [(c.flow_id, c.packets) for c in transit.arrivals("root", 0.05)]
        assert order == [(1, 2.0), (0, 1.0), (2, 3.0)]

    def test_per_flow_fifo_preserved(self):
        # Same source hop => same forward share => monotone eligibility, so a
        # flow's chunks can never overtake one another in transit.
        transit = TransitQueue()
        for index in range(5):
            transit.send("hop2", 0, float(index + 1), 0.0, eligible_time=0.01 * index)
        packets = [c.packets for c in transit.arrivals("hop2", 1.0)]
        assert packets == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_occupancy_buckets(self):
        transit = TransitQueue()
        transit.send("hop2", 0, 4.0, 0.0, eligible_time=0.5)
        transit.send("hop2", 1, 2.0, 0.0, eligible_time=0.6)
        transit.send("hop3", 0, 1.0, 0.0, eligible_time=0.7)
        assert transit.occupancy == pytest.approx(7.0)
        assert transit.per_link_occupancy() == {"hop2": pytest.approx(6.0),
                                                "hop3": pytest.approx(1.0)}
        assert transit.per_flow_occupancy() == {0: pytest.approx(5.0),
                                                1: pytest.approx(2.0)}
        transit.reset()
        assert transit.occupancy == 0.0


# ---------------------------------------------------------------------- #
# Transit timing end to end
# ---------------------------------------------------------------------- #
class TestTransitTiming:
    def test_chunks_no_longer_cross_a_chain_in_one_tick(self):
        # Pre-fix, a chunk drained from hop1 entered hop2 (and hop3, ...) at
        # the same timestamp; now the downstream hops stay empty until the
        # upstream forward shares have elapsed.
        topo = build_topology("chain(3)", constant_trace(), min_rtt=0.12,
                              buffer_bdp=2.0, seed=1)
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(40.0))], dt=DT)
        hop_delay = 0.12 / 3          # 0.04 per hop, forward share 0.02
        forward_share = hop_delay / 2
        downstream_seen = {"hop2": None, "hop3": None}
        for _ in range(40):
            sim.tick()
            occupancy = sim.hop_occupancy()
            delivered = {name: topo.links[name].queue.total_delivered
                         for name in downstream_seen}
            for name in downstream_seen:
                if downstream_seen[name] is None and (
                        occupancy[name] > 0 or delivered[name] > 0):
                    downstream_seen[name] = sim.now
        # hop2 sees traffic only after hop1's forward share; hop3 after both.
        assert downstream_seen["hop2"] is not None
        assert downstream_seen["hop3"] is not None
        assert downstream_seen["hop2"] >= forward_share - 1e-12
        assert downstream_seen["hop3"] >= 2 * forward_share - 1e-12
        assert downstream_seen["hop3"] > downstream_seen["hop2"]

    def test_in_transit_bucket_is_populated_between_hops(self):
        topo = build_topology("chain(2)", constant_trace(), min_rtt=0.2,
                              buffer_bdp=2.0, seed=1)
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(40.0))], dt=DT)
        sim.tick()  # hop1 drains at t=0; chunks are now in flight to hop2
        assert sim.in_transit_total() > 0.0
        assert sim.in_transit_occupancy().get("hop2", 0.0) > 0.0
        assert sim.in_transit_per_flow().get(0, 0.0) > 0.0
        # ... and fully flushed once the forward share has elapsed.
        for _ in range(30):
            sim.tick()
        flushed = sum(sim.in_transit_occupancy().values())
        assert flushed == pytest.approx(sim.in_transit_total(), abs=1e-12)

    def test_single_bottleneck_never_uses_transit(self):
        sim = NetworkSimulator(
            build_topology("single_bottleneck", constant_trace(), min_rtt=0.05, seed=1),
            [Flow(0, CubicController())], dt=DT)
        for _ in range(200):
            sim.tick()
            assert sim.in_transit_total() == 0.0

    def test_end_to_end_ack_time_matches_single_hop_reference(self):
        # The delay split must not change end-to-end latency: on an
        # uncongested path, a chain delivers its first ack within a couple of
        # tick-quantization steps of the equivalent single hop.
        def first_ack_time(spec):
            sim = NetworkSimulator(
                build_topology(spec, constant_trace(96.0), min_rtt=0.1,
                               buffer_bdp=4.0, seed=1),
                [Flow(0, FixedWindowController(4.0))], dt=DT)
            for _ in range(100):
                records = sim.tick()
                if records[0].acked > 0:
                    return sim.now
            raise AssertionError(f"no ack on {spec}")

        single = first_ack_time("single_bottleneck")
        chained = first_ack_time("chain(4)")
        assert single == pytest.approx(0.1)       # the path RTT, tick-quantized
        # Each of the 3 transit stages can add at most one tick of
        # quantization on top of the path RTT; propagation itself is equal.
        assert chained >= single - 1e-12
        assert chained <= single + 3 * DT + 1e-12


class TestTransitDropNotification:
    def test_downstream_drop_notifies_after_return_delay_not_srtt(self):
        # hop1 is fast with a deep buffer; hop2 is slow with a tiny buffer, so
        # drops happen when transit arrivals hit hop2's full FIFO.  The loss
        # must reach the sender ~delay1/2 after the drop (return trip from the
        # drop hop), which is far sooner than the legacy full-srtt guess
        # (>= path RTT = 0.2 s here).
        fast = Link.build("hop1", constant_trace(96.0), delay=0.1, buffer_rtt=0.2,
                          buffer_bdp=5.0)
        tiny = Link.build("hop2", constant_trace(12.0), delay=0.1, buffer_rtt=0.2,
                          buffer_packets=3.0)
        topo = Topology("tiny-mid", [fast, tiny], bottleneck="hop2")
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(400.0))], dt=DT)
        drop_time = None
        notify_time = None
        for _ in range(200):
            records = sim.tick()
            if drop_time is None and tiny.queue.total_dropped > 0:
                drop_time = sim.now
            if notify_time is None and records[0].lost > 0:
                notify_time = sim.now
                break
        assert drop_time is not None and notify_time is not None
        gap = notify_time - drop_time
        return_delay = 0.1 / 2  # forward share of hop1 == its return share
        # Observed gap: the return delay, up to two ticks of quantization
        # (drop observed at end-of-tick, notification processed at the next
        # boundary after the event).
        assert gap >= return_delay - DT - 1e-12
        assert gap <= return_delay + 2 * DT + 1e-12
        # And decisively sooner than the legacy guess, which charged a full
        # estimated round trip (srtt, falling back to the path RTT = 0.2 s).
        assert gap < sim.path_rtt(0) - 1e-9
        assert sim.flows[0].total_lost > 0.0

    def test_transit_drops_conserve(self):
        fast = Link.build("hop1", constant_trace(96.0), delay=0.05, buffer_rtt=0.1,
                          buffer_bdp=5.0)
        tiny = Link.build("hop2", constant_trace(12.0), delay=0.05, buffer_rtt=0.1,
                          buffer_packets=3.0)
        topo = Topology("tiny-mid", [fast, tiny], bottleneck="hop2")
        sim = NetworkSimulator(topo, [Flow(0, FixedWindowController(300.0))], dt=DT)
        for _ in range(400):
            sim.tick()
            assert_tick_conservation(sim)
        assert sim.flows[0].total_lost > 0.0


# ---------------------------------------------------------------------- #
# Family-wide ack-timing lower bound and tick-level conservation
# ---------------------------------------------------------------------- #
class TestFamilyInvariants:
    @pytest.mark.parametrize("spec", topology_family_specs())
    def test_first_ack_respects_path_rtt_and_conservation(self, spec):
        topo = build_topology(spec, constant_trace(18.0), min_rtt=0.06,
                              buffer_bdp=0.8, random_loss_rate=0.01, seed=6)
        flows = [Flow(0, CubicController()),
                 Flow(1, CubicController(), start_time=1.0),
                 Flow(2, CubicController(), start_time=1.5, stop_time=3.5)]
        sim = NetworkSimulator(topo, flows, dt=DT)
        first_ack = {flow.flow_id: None for flow in flows}
        for _ in range(400):
            records = sim.tick()
            for fid, record in records.items():
                if first_ack[fid] is None and record.acked > 0:
                    first_ack[fid] = sim.now
            assert_tick_conservation(sim)
        for flow in flows:
            fid = flow.flow_id
            assert first_ack[fid] is not None, f"flow {fid} never acked on {spec}"
            lower_bound = flow.start_time + sim.path_rtt(fid)
            assert first_ack[fid] >= lower_bound - 1e-12, (
                f"flow {fid} on {spec}: first ack {first_ack[fid]} beats "
                f"start + path RTT {lower_bound}")

    @pytest.mark.parametrize("spec", ["chain(3)", "fan_in(3)", "shared_segment"])
    def test_invariants_hold_under_poisson_churn(self, spec):
        trace = constant_trace(18.0, name="churn-const")
        background = build_workload("poisson(0.8)", duration=5.0, seed=3,
                                    trace_name=trace.name, topology=spec)
        topo = build_topology(spec, trace, min_rtt=0.06, buffer_bdp=0.8, seed=3)
        flows = [Flow(0, CubicController())] + [cross.build() for cross in background]
        sim = NetworkSimulator(topo, flows, dt=DT)
        first_ack = {flow.flow_id: None for flow in flows}
        for _ in range(500):
            records = sim.tick()
            for fid, record in records.items():
                if first_ack[fid] is None and record.acked > 0:
                    first_ack[fid] = sim.now
            assert_tick_conservation(sim)
        assert first_ack[0] is not None
        for flow in flows:
            fid = flow.flow_id
            if first_ack[fid] is None:
                continue  # a briefly-lived churned flow may never get an ack
            assert first_ack[fid] >= flow.start_time + sim.path_rtt(fid) - 1e-12, (
                f"churned flow {fid} on {spec} acked before start + path RTT")


# ---------------------------------------------------------------------- #
# Churn determinism with transit queues active (serial == sharded)
# ---------------------------------------------------------------------- #
class TestChurnDeterminismWithTransit:
    def test_serial_and_sharded_rows_identical_on_multihop(self):
        from repro.harness.evaluate import EvaluationSettings
        from repro.harness.parallel import ExperimentTask, ParallelRunner

        trace = constant_trace(24.0, duration=30.0, name="const-24")
        tasks = []
        for workload in ("poisson(0.6)", "responsive(cubic)"):
            for topology in ("chain(3)", "fan_in(3)", "shared_segment"):
                settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                              topology=topology, workload=workload,
                                              seed=7)
                tasks.append(ExperimentTask(scheme="cubic", trace=trace,
                                            settings=settings))
        serial = ParallelRunner(1).run(tasks)
        sharded = ParallelRunner(2).run(tasks)
        assert serial.rows == sharded.rows
        assert len(serial.rows) == len(tasks)


# ---------------------------------------------------------------------- #
# Golden mini-store: one cell recomputed locally
# ---------------------------------------------------------------------- #
class TestGoldenMiniStore:
    """CI diffs the whole committed golden store against a fresh grid; this
    recomputes two representative cells in-process so the physics pin also
    trips locally under plain pytest."""

    GOLDEN_DIR = "tests/golden/workload_stress_mini"

    @pytest.fixture(scope="class")
    def golden_rows(self):
        import json
        import os
        path = os.path.join(os.path.dirname(__file__), "golden",
                            "workload_stress_mini", "records.jsonl")
        rows = {}
        with open(path) as handle:
            for line in handle:
                row = json.loads(line)["row"]
                rows[(row["scheme"], row["topology"], row["workload"])] = row
        assert len(rows) == 8
        return rows

    @pytest.mark.parametrize("scheme,topology,workload", [
        ("cubic", "chain(3)", "static"),
        ("vegas", "fan_in(3)", "poisson(0.25)"),
    ])
    def test_recomputed_cell_matches_golden(self, golden_rows, scheme, topology, workload):
        from repro.harness.evaluate import EvaluationSettings
        from repro.harness.experiments import trace_subset
        from repro.harness.parallel import ExperimentTask, ParallelRunner

        trace = trace_subset("synthetic", 1)[0]
        settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                      topology=topology, workload=workload, seed=1)
        task = ExperimentTask(scheme=scheme, trace=trace, settings=settings,
                              tags={"workload": workload})
        (row,) = ParallelRunner(1).run([task]).rows
        golden = golden_rows[(scheme, topology, workload)]
        for name, value in golden.items():
            if isinstance(value, float):
                assert row[name] == pytest.approx(value, rel=1e-9, abs=1e-12), (
                    f"{scheme}/{topology}/{workload}: {name} drifted from golden store")
            else:
                assert row[name] == value, name


# ---------------------------------------------------------------------- #
# FIFO ordering across hops, per flow, end to end
# ---------------------------------------------------------------------- #
class TestPerFlowFifoAcrossHops:
    @pytest.mark.parametrize("spec", ["chain(3)", "fan_in(3)", "shared_segment"])
    def test_rtt_samples_never_reorder_within_a_flow(self, spec):
        # FIFO across the whole path: with every queue FIFO and the transit
        # stage order-preserving, a flow's acks must come back in send order —
        # observable as ack events whose arrival times are non-decreasing
        # tick to tick (acked counts only ever accrue, never regress).
        topo = build_topology(spec, constant_trace(18.0), min_rtt=0.06,
                              buffer_bdp=0.8, seed=6)
        flows = [Flow(0, CubicController()), Flow(1, CubicController(), start_time=0.5)]
        sim = NetworkSimulator(topo, flows, dt=DT)
        cumulative = {0: [], 1: []}
        for _ in range(400):
            records = sim.tick()
            for fid in cumulative:
                cumulative[fid].append(sim.flows[fid].total_acked)
        for fid, series in cumulative.items():
            arr = np.asarray(series)
            assert (np.diff(arr) >= -1e-12).all(), f"flow {fid} acked regressed"
            assert arr[-1] > 0.0
