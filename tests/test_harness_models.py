"""Tests for the model zoo (training + caching)."""

import pytest

from repro.harness.models import MODEL_KINDS, TrainedModel, clear_model_cache, get_trained_model


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        get_trained_model("canopy-unknown", training_steps=10)


def test_model_is_cached_and_reused():
    first = get_trained_model("canopy-shallow", training_steps=40, seed=21)
    second = get_trained_model("canopy-shallow", training_steps=40, seed=21)
    assert first is second


def test_different_budget_trains_new_model():
    a = get_trained_model("canopy-shallow", training_steps=40, seed=22)
    b = get_trained_model("canopy-shallow", training_steps=41, seed=22)
    assert a is not b


def test_lambda_and_components_overrides():
    model = get_trained_model("canopy-shallow", training_steps=40, seed=23, lam=0.5, n_components=2)
    assert model.config.lam == pytest.approx(0.5)
    assert model.config.n_components == 2


def test_topologies_override_trains_distinct_model():
    base = get_trained_model("canopy-shallow", training_steps=40, seed=21)
    multi = get_trained_model("canopy-shallow", training_steps=40, seed=21,
                              topologies=("single_bottleneck", "chain(2)"))
    assert multi is not base
    assert multi.config.env.topologies == ("single_bottleneck", "chain(2)")
    # The cache key normalizes the catalog, so list vs tuple hits the same entry.
    again = get_trained_model("canopy-shallow", training_steps=40, seed=21,
                              topologies=["single_bottleneck", "chain(2)"])
    assert again is multi
    # An explicit single-bottleneck catalog IS the preset default, so it
    # shares the preset's cache entry rather than retraining the same model.
    explicit = get_trained_model("canopy-shallow", training_steps=40, seed=21,
                                 topologies=("single_bottleneck",))
    assert explicit is base
    assert base.config.env.topologies == ("single_bottleneck",)


def test_trained_model_accessors(quick_model):
    assert isinstance(quick_model, TrainedModel)
    assert quick_model.kind == "canopy-shallow"
    assert quick_model.actor is quick_model.training.agent.actor
    assert {p.name for p in quick_model.properties} == {"P1", "P2"}
    verifier = quick_model.make_verifier(n_components=7)
    assert verifier.config.n_components == 7
    policy = quick_model.policy
    action = policy(quick_model.observation_config.state_dim * [0.0])
    assert -1.0 <= float(action[0]) <= 1.0


def test_all_kinds_listed():
    assert set(MODEL_KINDS) == {"canopy-shallow", "canopy-deep", "canopy-robust", "orca"}


def test_clear_cache_forces_retraining():
    a = get_trained_model("orca", training_steps=30, seed=24)
    clear_model_cache()
    b = get_trained_model("orca", training_steps=30, seed=24)
    assert a is not b
