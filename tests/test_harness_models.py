"""Tests for the model zoo (training + caching)."""

import pytest

from repro.harness.models import MODEL_KINDS, TrainedModel, clear_model_cache, get_trained_model


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        get_trained_model("canopy-unknown", training_steps=10)


def test_model_is_cached_and_reused():
    first = get_trained_model("canopy-shallow", training_steps=40, seed=21)
    second = get_trained_model("canopy-shallow", training_steps=40, seed=21)
    assert first is second


def test_different_budget_trains_new_model():
    a = get_trained_model("canopy-shallow", training_steps=40, seed=22)
    b = get_trained_model("canopy-shallow", training_steps=41, seed=22)
    assert a is not b


def test_lambda_and_components_overrides():
    model = get_trained_model("canopy-shallow", training_steps=40, seed=23, lam=0.5, n_components=2)
    assert model.config.lam == pytest.approx(0.5)
    assert model.config.n_components == 2


def test_trained_model_accessors(quick_model):
    assert isinstance(quick_model, TrainedModel)
    assert quick_model.kind == "canopy-shallow"
    assert quick_model.actor is quick_model.training.agent.actor
    assert {p.name for p in quick_model.properties} == {"P1", "P2"}
    verifier = quick_model.make_verifier(n_components=7)
    assert verifier.config.n_components == 7
    policy = quick_model.policy
    action = policy(quick_model.observation_config.state_dim * [0.0])
    assert -1.0 <= float(action[0]) <= 1.0


def test_all_kinds_listed():
    assert set(MODEL_KINDS) == {"canopy-shallow", "canopy-deep", "canopy-robust", "orca"}


def test_clear_cache_forces_retraining():
    a = get_trained_model("orca", training_steps=30, seed=24)
    clear_model_cache()
    b = get_trained_model("orca", training_steps=30, seed=24)
    assert a is not b
