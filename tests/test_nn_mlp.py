"""Tests for the MLP container, actor/critic builders, and weight management."""

import numpy as np
import pytest

from repro.nn.mlp import MLP, make_actor, make_critic


def test_mlp_output_shape():
    model = MLP(6, (8, 4), 2, rng=np.random.default_rng(0))
    out = model.forward(np.zeros((3, 6)))
    assert out.shape == (3, 2)


def test_invalid_activation_names():
    with pytest.raises(ValueError):
        MLP(2, (4,), 1, hidden_activation="sigmoidish")
    with pytest.raises(ValueError):
        MLP(2, (4,), 1, output_activation="wrong")


def test_actor_output_in_unit_range():
    actor = make_actor(5, hidden_sizes=(8, 8), rng=np.random.default_rng(1))
    x = np.random.default_rng(2).normal(size=(10, 5)) * 100.0
    out = actor.forward(x)
    assert np.all(out >= -1.0) and np.all(out <= 1.0)


def test_critic_takes_state_action_concatenation():
    critic = make_critic(5, 1, rng=np.random.default_rng(3))
    out = critic.forward(np.zeros((2, 6)))
    assert out.shape == (2, 1)


def test_get_set_weights_round_trip():
    model = MLP(4, (6,), 1, rng=np.random.default_rng(4))
    weights = model.get_weights()
    clone = MLP(4, (6,), 1, rng=np.random.default_rng(99))
    clone.set_weights(weights)
    x = np.random.default_rng(5).normal(size=(3, 4))
    assert np.allclose(model.forward(x), clone.forward(x))


def test_set_weights_wrong_count_raises():
    model = MLP(4, (6,), 1)
    with pytest.raises(ValueError):
        model.set_weights(model.get_weights()[:-1])


def test_set_weights_wrong_shape_raises():
    model = MLP(4, (6,), 1)
    weights = model.get_weights()
    weights[0] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        model.set_weights(weights)


def test_clone_is_independent():
    model = MLP(3, (4,), 1, rng=np.random.default_rng(6))
    clone = model.clone()
    x = np.ones((1, 3))
    assert np.allclose(model.forward(x), clone.forward(x))
    clone.parameters()[0][...] += 1.0
    assert not np.allclose(model.forward(x), clone.forward(x))


def test_soft_update_interpolates():
    source = MLP(3, (4,), 1, rng=np.random.default_rng(7))
    target = MLP(3, (4,), 1, rng=np.random.default_rng(8))
    original = [p.copy() for p in target.parameters()]
    target.soft_update_from(source, tau=0.5)
    for orig, src, updated in zip(original, source.parameters(), target.parameters()):
        assert np.allclose(updated, 0.5 * src + 0.5 * orig)


def test_soft_update_invalid_tau():
    source = MLP(3, (4,), 1)
    target = MLP(3, (4,), 1)
    with pytest.raises(ValueError):
        target.soft_update_from(source, tau=1.5)


def test_copy_from_makes_exact_copy():
    source = MLP(3, (4,), 1, rng=np.random.default_rng(9))
    target = MLP(3, (4,), 1, rng=np.random.default_rng(10))
    target.copy_from(source)
    x = np.random.default_rng(11).normal(size=(2, 3))
    assert np.allclose(source.forward(x), target.forward(x))
