"""Tests for the neural-network layers: forward correctness and gradients."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Identity, ReLU, Sequential, Tanh


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f(x)
        flat[i] = original - eps
        minus = f(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape_and_value(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer.forward(x)
        assert out.shape == (1, 2)
        assert np.allclose(out, x @ layer.weight.T + layer.bias)

    def test_forward_promotes_1d_input(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        out = layer.forward(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (1, 2)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))

        def loss_fn(_w):
            return float(np.sum(layer.forward(x) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        numerical = numerical_gradient(loss_fn, layer.weight)
        assert np.allclose(layer.grad_weight, numerical, atol=1e-4)

    def test_bias_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss_fn(_b):
            return float(np.sum(layer.forward(x) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        numerical = numerical_gradient(loss_fn, layer.bias)
        assert np.allclose(layer.grad_bias, numerical, atol=1e-4)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(1, 3))

        def loss_fn(arr):
            return float(np.sum(layer.forward(arr) ** 2))

        out = layer.forward(x)
        grad_input = layer.backward(2.0 * out)
        numerical = numerical_gradient(loss_fn, x)
        assert np.allclose(grad_input, numerical, atol=1e-4)

    def test_invalid_init_name_raises(self):
        with pytest.raises(ValueError):
            Dense(2, 2, weight_init="nonsense")

    def test_zero_grad_clears_accumulators(self):
        layer = Dense(2, 2, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((1, 2)))
        layer.backward(np.ones_like(out))
        assert np.any(layer.grad_weight != 0)
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)


class TestActivations:
    def test_relu_forward_and_backward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]])
        out = layer.forward(x)
        assert np.allclose(out, [[0.0, 0.5, 2.0]])
        grad = layer.backward(np.ones_like(out))
        assert np.allclose(grad, [[0.0, 1.0, 1.0]])

    def test_tanh_gradient_matches_numerical(self):
        layer = Tanh()
        x = np.array([[0.3, -0.7]])

        def loss_fn(arr):
            return float(np.sum(np.tanh(arr) ** 2))

        out = layer.forward(x)
        grad = layer.backward(2.0 * out)
        numerical = numerical_gradient(loss_fn, x.copy())
        assert np.allclose(grad, numerical, atol=1e-5)

    def test_identity_passthrough(self):
        layer = Identity()
        x = np.array([[1.0, 2.0]])
        assert np.allclose(layer.forward(x), x)
        assert np.allclose(layer.backward(x), x)

    def test_activation_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 2)))


class TestSequential:
    def test_forward_composition(self):
        rng = np.random.default_rng(4)
        d1, d2 = Dense(3, 4, rng=rng), Dense(4, 2, rng=rng)
        model = Sequential([d1, ReLU(), d2])
        x = rng.normal(size=(2, 3))
        manual = np.maximum(x @ d1.weight.T + d1.bias, 0.0) @ d2.weight.T + d2.bias
        assert np.allclose(model.forward(x), manual)

    def test_parameters_and_grads_alignment(self):
        model = Sequential([Dense(2, 3), ReLU(), Dense(3, 1)])
        params = model.parameters()
        grads = model.grads()
        assert len(params) == len(grads) == 4
        for p, g in zip(params, grads):
            assert p.shape == g.shape

    def test_end_to_end_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        model = Sequential([Dense(3, 5, rng=rng), Tanh(), Dense(5, 1, rng=rng)])
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 1))

        def loss_fn(_):
            prediction = model.forward(x)
            return float(np.mean((prediction - target) ** 2))

        model.zero_grad()
        prediction = model.forward(x)
        grad = 2.0 * (prediction - target) / prediction.size
        model.backward(grad)
        first_dense = model.layers[0]
        numerical = numerical_gradient(loss_fn, first_dense.weight)
        assert np.allclose(first_dense.grad_weight, numerical, atol=1e-4)
