"""Tests for exploration noise processes."""

import numpy as np
import pytest

from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise


def test_gaussian_noise_statistics():
    noise = GaussianNoise(dim=2, sigma=0.5, seed=0)
    samples = np.array([noise.sample() for _ in range(4000)])
    assert samples.shape == (4000, 2)
    assert abs(samples.mean()) < 0.05
    assert abs(samples.std() - 0.5) < 0.05


def test_gaussian_zero_sigma_is_deterministic():
    noise = GaussianNoise(dim=3, sigma=0.0, seed=1)
    assert np.allclose(noise.sample(), 0.0)


def test_gaussian_negative_sigma_rejected():
    with pytest.raises(ValueError):
        GaussianNoise(dim=1, sigma=-0.1)


def test_ou_noise_reverts_to_mean():
    noise = OrnsteinUhlenbeckNoise(dim=1, mu=0.0, theta=0.5, sigma=0.0, seed=0)
    noise._state = np.array([10.0])
    for _ in range(50):
        value = noise.sample()
    assert abs(value[0]) < 0.1


def test_ou_noise_reset():
    noise = OrnsteinUhlenbeckNoise(dim=2, mu=1.0, seed=0)
    noise.sample()
    noise.reset()
    assert np.allclose(noise._state, 1.0)


def test_ou_invalid_params_rejected():
    with pytest.raises(ValueError):
        OrnsteinUhlenbeckNoise(dim=1, sigma=-1.0)
    with pytest.raises(ValueError):
        OrnsteinUhlenbeckNoise(dim=1, dt=0.0)


def test_noise_is_reproducible_with_seed():
    a = GaussianNoise(dim=2, sigma=1.0, seed=42)
    b = GaussianNoise(dim=2, sigma=1.0, seed=42)
    assert np.allclose(a.sample(), b.sample())
