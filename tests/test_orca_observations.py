"""Tests for the Orca observation pipeline."""

import numpy as np
import pytest

from repro.cc.netsim import MonitorReport
from repro.orca.observations import FEATURE_NAMES, ObservationBuilder, ObservationConfig


def make_report(throughput=500.0, loss=0.0, delay=0.02, n_acks=100.0, interval=0.2,
                srtt=0.05, min_rtt=0.04, cwnd=20.0):
    return MonitorReport(throughput_pps=throughput, loss_rate=loss, avg_queuing_delay=delay,
                         n_acks=n_acks, interval=interval, srtt=srtt, min_rtt=min_rtt,
                         avg_rtt=srtt, cwnd=cwnd, sent_pps=throughput)


class TestConfig:
    def test_invalid_history(self):
        with pytest.raises(ValueError):
            ObservationConfig(history_len=0)

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            ObservationConfig(delay_scale=0.0)

    def test_dimensions(self):
        config = ObservationConfig(history_len=3)
        assert config.feature_dim == len(FEATURE_NAMES)
        assert config.state_dim == 3 * len(FEATURE_NAMES)


class TestBuilder:
    def test_initial_state_is_zero(self):
        builder = ObservationBuilder(ObservationConfig(history_len=2))
        assert np.allclose(builder.state(), 0.0)

    def test_state_dim_matches_config(self):
        builder = ObservationBuilder(ObservationConfig(history_len=4))
        assert builder.observe(make_report()).shape == (4 * len(FEATURE_NAMES),)

    def test_all_features_within_bounds(self):
        builder = ObservationBuilder()
        state = builder.observe(make_report(throughput=1e6, loss=2.0, delay=10.0, n_acks=1e9))
        assert np.all(state <= 2.0 + 1e-9)
        assert np.all(state >= -1.0 - 1e-9)

    def test_history_stacking_newest_first(self):
        builder = ObservationBuilder(ObservationConfig(history_len=2))
        builder.observe(make_report(loss=0.1))
        state = builder.observe(make_report(loss=0.9))
        loss_indices = builder.feature_indices("loss")
        assert state[loss_indices[0]] == pytest.approx(0.9)
        assert state[loss_indices[1]] == pytest.approx(0.1)

    def test_delay_normalization(self):
        config = ObservationConfig(delay_scale=0.2)
        builder = ObservationBuilder(config)
        state = builder.observe(make_report(delay=0.1))
        assert state[builder.feature_indices("delay")[0]] == pytest.approx(0.5)

    def test_inv_rtt_feature(self):
        builder = ObservationBuilder()
        state = builder.observe(make_report(srtt=0.08, min_rtt=0.04))
        assert state[builder.feature_indices("inv_rtt")[0]] == pytest.approx(0.5)

    def test_inv_rtt_defaults_to_one_without_samples(self):
        builder = ObservationBuilder()
        state = builder.observe(make_report(srtt=0.0, min_rtt=0.0))
        assert state[builder.feature_indices("inv_rtt")[0]] == pytest.approx(1.0)

    def test_dcwnd_sign_tracks_changes(self):
        builder = ObservationBuilder()
        builder.observe(make_report(cwnd=20.0))
        state_up = builder.observe(make_report(cwnd=30.0))
        assert state_up[builder.feature_indices("dcwnd")[0]] > 0.0
        state_down = builder.observe(make_report(cwnd=10.0))
        assert state_down[builder.feature_indices("dcwnd")[0]] < 0.0

    def test_max_throughput_tracked(self):
        builder = ObservationBuilder()
        builder.observe(make_report(throughput=100.0))
        builder.observe(make_report(throughput=900.0))
        assert builder.max_throughput == pytest.approx(900.0)
        state = builder.observe(make_report(throughput=450.0))
        assert state[builder.feature_indices("throughput")[0]] == pytest.approx(0.5)

    def test_reset_clears_history(self):
        builder = ObservationBuilder()
        builder.observe(make_report())
        builder.reset()
        assert np.allclose(builder.state(), 0.0)
        assert builder.max_throughput == pytest.approx(1.0)

    def test_feature_indices_validation(self):
        builder = ObservationBuilder()
        with pytest.raises(KeyError):
            builder.feature_indices("nonexistent")
        with pytest.raises(IndexError):
            builder.feature_indices("delay", steps=[99])

    def test_feature_indices_cover_all_steps(self):
        builder = ObservationBuilder(ObservationConfig(history_len=3))
        indices = builder.feature_indices("delay")
        assert len(indices) == 3
        assert len(set(indices)) == 3

    def test_feature_history_matches_observations(self):
        builder = ObservationBuilder(ObservationConfig(history_len=3, delay_scale=1.0))
        for delay in (0.1, 0.2, 0.3):
            builder.observe(make_report(delay=delay))
        history = builder.feature_history("delay")
        assert history[0] == pytest.approx(0.3)
        assert history[2] == pytest.approx(0.1)
