"""Differential suite: topology engine vs the legacy single-link simulator.

``LegacySingleLinkSimulator`` is a faithful copy of the pre-topology
``NetworkSimulator.tick`` loop (one shared ``BottleneckLink``, no routes, no
cross traffic).  The topology-driven simulator must reproduce its per-tick
trajectory *exactly* (atol=1e-12, in practice bit-for-bit) on the
``single_bottleneck`` family and on ``chain(1)`` — this is what keeps every
figure of the reproduction byte-stable across the multi-bottleneck refactor.
"""

import numpy as np
import pytest

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.netsim import NetworkSimulator
from repro.cc.vegas import VegasController
from repro.orca.env import OrcaEnvConfig, OrcaNetworkEnv
from repro.topology import Topology, build_topology
from repro.traces.synthetic import make_synthetic_trace
from repro.traces.trace import BandwidthTrace

RECORD_FIELDS = ("time", "sent", "acked", "lost", "rtt", "queuing_delay", "cwnd", "inflight")


class LegacySingleLinkSimulator:
    """The pre-topology simulator core: everything rides one shared link."""

    def __init__(self, link, flows, dt=0.01):
        self.link = link
        self.flows = {flow.flow_id: flow for flow in flows}
        self._flow_list = list(self.flows.values())
        self.dt = float(dt)
        self.now = 0.0
        self._tick_count = 0

    def tick(self):
        now = self.now
        dt = self.dt
        prop_rtt = self.link.min_rtt

        flow_list = self._flow_list
        n_flows = len(flow_list)
        offset = self._tick_count % n_flows
        for position in range(n_flows):
            flow = flow_list[(offset + position) % n_flows]
            allowance = flow.send_allowance(now, dt, prop_rtt)
            if allowance > 0:
                accepted, dropped, random_lost = self.link.enqueue(flow.flow_id, allowance, now)
                flow.record_sent(accepted, dropped, random_lost, now, prop_rtt)
        self._tick_count += 1

        for chunk in self.link.drain(now, dt):
            self.flows[chunk.flow_id].record_delivery(chunk.packets, chunk.queuing_delay, now, prop_rtt)

        end_of_tick = now + dt
        records = {}
        for fid, flow in self.flows.items():
            flow.process_events(end_of_tick, dt)
            records[fid] = flow.finish_tick(end_of_tick, dt)
        self.now = end_of_tick
        return records


def run_and_collect(sim, n_ticks):
    """Trajectories per flow: one (n_ticks, n_fields) array per flow id."""
    columns = {fid: [] for fid in sim.flows}
    for _ in range(n_ticks):
        records = sim.tick()
        for fid, record in records.items():
            columns[fid].append([getattr(record, name) for name in RECORD_FIELDS])
    return {fid: np.asarray(rows, dtype=np.float64) for fid, rows in columns.items()}


def make_link(trace, min_rtt=0.04, buffer_bdp=1.0, random_loss_rate=0.0, seed=11):
    return BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=buffer_bdp,
                          random_loss_rate=random_loss_rate, seed=seed)


def assert_trajectories_match(legacy, topo, n_flows):
    for fid in range(n_flows):
        np.testing.assert_allclose(legacy[fid], topo[fid], rtol=0.0, atol=1e-12,
                                   err_msg=f"flow {fid} diverged from the legacy trajectory")


class TestSingleBottleneckMatchesLegacy:
    def test_cubic_on_variable_trace(self):
        trace = make_synthetic_trace("step-12-48")
        legacy_sim = LegacySingleLinkSimulator(make_link(trace), [Flow(0, CubicController())])
        topo_sim = NetworkSimulator(
            build_topology("single_bottleneck", trace, min_rtt=0.04, buffer_bdp=1.0, seed=11),
            [Flow(0, CubicController())],
        )
        legacy = run_and_collect(legacy_sim, 800)
        topo = run_and_collect(topo_sim, 800)
        assert_trajectories_match(legacy, topo, n_flows=1)

    def test_random_loss_trajectory(self):
        trace = BandwidthTrace.constant(24.0, duration=60.0)
        legacy_sim = LegacySingleLinkSimulator(
            make_link(trace, random_loss_rate=0.01), [Flow(0, CubicController())])
        topo_sim = NetworkSimulator(
            build_topology("single_bottleneck", trace, min_rtt=0.04, buffer_bdp=1.0,
                           random_loss_rate=0.01, seed=3),
            [Flow(0, CubicController())],
        )
        legacy = run_and_collect(legacy_sim, 600)
        topo = run_and_collect(topo_sim, 600)
        assert_trajectories_match(legacy, topo, n_flows=1)

    def test_multi_flow_rotation_and_stagger(self):
        trace = make_synthetic_trace("square-12-36")
        def flows():
            return [Flow(0, CubicController()), Flow(1, VegasController(), start_time=1.5),
                    Flow(2, CubicController(), start_time=3.0)]
        legacy_sim = LegacySingleLinkSimulator(make_link(trace, buffer_bdp=0.7), flows())
        topo_sim = NetworkSimulator(
            build_topology("single_bottleneck", trace, min_rtt=0.04, buffer_bdp=0.7, seed=11),
            flows(),
        )
        legacy = run_and_collect(legacy_sim, 600)
        topo = run_and_collect(topo_sim, 600)
        assert_trajectories_match(legacy, topo, n_flows=3)

    def test_wrapped_bare_link_matches_legacy(self):
        # Passing a bare BottleneckLink (the legacy constructor signature)
        # wraps it as a one-hop topology with identical dynamics.
        trace = make_synthetic_trace("step-12-48")
        legacy_sim = LegacySingleLinkSimulator(make_link(trace), [Flow(0, CubicController())])
        wrapped_sim = NetworkSimulator(make_link(trace), [Flow(0, CubicController())])
        assert isinstance(wrapped_sim.topology, Topology)
        legacy = run_and_collect(legacy_sim, 500)
        wrapped = run_and_collect(wrapped_sim, 500)
        assert_trajectories_match(legacy, wrapped, n_flows=1)


class TestChainOneEquivalence:
    def test_chain1_matches_single_bottleneck(self):
        trace = make_synthetic_trace("step-12-48")
        single = NetworkSimulator(
            build_topology("single_bottleneck", trace, min_rtt=0.05, buffer_bdp=1.5, seed=5),
            [Flow(0, CubicController())],
        )
        chain1 = NetworkSimulator(
            build_topology("chain(1)", trace, min_rtt=0.05, buffer_bdp=1.5, seed=5),
            [Flow(0, CubicController())],
        )
        a = run_and_collect(single, 700)
        b = run_and_collect(chain1, 700)
        assert_trajectories_match(a, b, n_flows=1)

    def test_chain1_matches_legacy(self):
        trace = make_synthetic_trace("step-12-48")
        legacy_sim = LegacySingleLinkSimulator(
            make_link(trace, min_rtt=0.05, buffer_bdp=1.5), [Flow(0, CubicController())])
        chain1 = NetworkSimulator(
            build_topology("chain(1)", trace, min_rtt=0.05, buffer_bdp=1.5, seed=5),
            [Flow(0, CubicController())],
        )
        legacy = run_and_collect(legacy_sim, 700)
        topo = run_and_collect(chain1, 700)
        assert_trajectories_match(legacy, topo, n_flows=1)


class LegacyTrainingEnv(OrcaNetworkEnv):
    """The pre-topology training environment: ``_sample_link`` + a bare link.

    A faithful copy of the ``OrcaNetworkEnv`` scenario sampler before the
    topology-aware refactor — it draws trace/bandwidth, RTT, and one link
    seed from the same RNG stream, then drives the simulator through the
    single shared ``BottleneckLink``.  The topology-aware environment with a
    ``("single_bottleneck",)`` catalog must reproduce its training trajectory
    exactly (atol=1e-12).
    """

    def _sample_link(self) -> BottleneckLink:
        cfg = self.config
        if cfg.traces:
            trace = cfg.traces[int(self._rng.integers(0, len(cfg.traces)))]
        else:
            bandwidth = float(self._rng.uniform(*cfg.bandwidth_range_mbps))
            duration = cfg.episode_intervals * cfg.monitor_interval + 5.0
            trace = BandwidthTrace.constant(bandwidth, duration=duration)
        min_rtt = float(self._rng.uniform(*cfg.rtt_range_s))
        return BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=cfg.buffer_bdp,
                              seed=int(self._rng.integers(0, 2 ** 31)))

    def reset(self, seed=None):
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        cfg = self.config
        link = self._sample_link()
        self._cubic = CubicController(initial_cwnd=10.0)
        flow = Flow(self._flow_id, self._cubic)
        self._sim = NetworkSimulator(link, [flow], dt=cfg.tick)
        self.observer.reset()
        self._steps = 0
        self._prev_enforced_cwnd = self._cubic.cwnd
        self._advance_one_interval()
        report = self._sim.monitor_report(self._flow_id)
        return self.observer.observe(self._maybe_noisy(report))


class TestTrainingTrajectoryPinned:
    """``topologies=("single_bottleneck",)`` training stays on the legacy path."""

    ACTIONS = (0.0, 0.5, -0.4, 1.0, -1.0)

    @staticmethod
    def _envs(**overrides):
        kwargs = dict(episode_intervals=5, seed=77)
        kwargs.update(overrides)
        legacy = LegacyTrainingEnv(OrcaEnvConfig(**kwargs))
        topo = OrcaNetworkEnv(OrcaEnvConfig(topologies=("single_bottleneck",), **kwargs))
        return legacy, topo

    def _assert_episodes_match(self, legacy, topo, n_episodes=3):
        for _ in range(n_episodes):
            obs_legacy = legacy.reset()
            obs_topo = topo.reset()
            np.testing.assert_allclose(obs_legacy, obs_topo, rtol=0.0, atol=1e-12)
            for action in self.ACTIONS:
                step_legacy = legacy.step(np.array([action]))
                step_topo = topo.step(np.array([action]))
                np.testing.assert_allclose(step_legacy[0], step_topo[0], rtol=0.0, atol=1e-12)
                assert step_legacy[1] == pytest.approx(step_topo[1], abs=1e-12)  # reward
                assert step_legacy[2] == step_topo[2]                            # done
                info_legacy, info_topo = step_legacy[3], step_topo[3]
                for key in ("cwnd_tcp", "cwnd_prev", "cwnd_enforced", "raw_reward",
                            "link_capacity_mbps", "min_rtt"):
                    assert info_legacy[key] == pytest.approx(info_topo[key], abs=1e-12), key

    def test_sampled_bandwidth_episodes_match_legacy(self):
        legacy, topo = self._envs()
        self._assert_episodes_match(legacy, topo)

    def test_trace_list_episodes_match_legacy(self):
        traces = [make_synthetic_trace("step-12-48"), make_synthetic_trace("square-12-36")]
        legacy, topo = self._envs(seed=31, traces=traces)
        self._assert_episodes_match(legacy, topo)

    def test_scenario_metadata_matches_legacy_draws(self):
        # The topology env must consume the RNG stream exactly like the legacy
        # sampler: same trace pick, same RTT, one entropy draw per episode.
        legacy, topo = self._envs(seed=19)
        legacy.reset()
        topo.reset()
        assert topo.scenario.spec == "single_bottleneck"
        assert topo.scenario.min_rtt == pytest.approx(legacy._sim.link.min_rtt, abs=1e-12)
        assert topo._sim.link.trace.capacity_mbps(0.0) == pytest.approx(
            legacy._sim.link.trace.capacity_mbps(0.0), abs=1e-12)


class TestMultiHopGoldenPins:
    """Golden fingerprints of the per-hop propagation physics.

    Multi-hop trajectories intentionally changed when the in-flight transit
    stage landed (chunks no longer cross a whole DAG inside one tick), so the
    multi-hop families cannot be pinned against the legacy single-link
    simulator.  Instead these scalars — recorded from the transit-enabled
    engine — pin the *new* physics so any future drift in multi-hop timing,
    loss accounting, or drain order is loud.  One-hop families stay covered
    by the bit-identical legacy suites above.
    """

    N_TICKS = 600
    GOLDEN = {
        "chain(3)": {
            0: dict(total_sent=11521.721085503006, total_acked=11190.358521524413,
                    total_lost=178.31765674604824, final_cwnd=183.69901952029554,
                    mean_rtt=0.11976975150426264, first_ack_time=0.06),
            1: dict(total_sent=1514.407746001484, total_acked=1479.57453160371,
                    total_lost=1.2355043778081864, final_cwnd=40.57908637140498,
                    mean_rtt=0.08733268879240086, first_ack_time=1.22),
        },
        "fan_in(3)": {
            0: dict(total_sent=10896.631181770015, total_acked=10554.691060192281,
                    total_lost=169.19159681864656, final_cwnd=203.08368387783423,
                    mean_rtt=0.12248489665601552, first_ack_time=0.07),
            1: dict(total_sent=694.7827753749448, total_acked=660.7831663243023,
                    total_lost=11.462054432071785, final_cwnd=26.28060359559994,
                    mean_rtt=0.10036081612429205, first_ack_time=1.31),
        },
        "shared_segment": {
            0: dict(total_sent=10884.273596880095, total_acked=10543.684381103227,
                    total_lost=167.87112014504413, final_cwnd=202.60239296210918,
                    mean_rtt=0.12228820065052712, first_ack_time=0.07),
            1: dict(total_sent=693.5498154655309, total_acked=662.2407312830754,
                    total_lost=8.709759657109464, final_cwnd=26.308601996070568,
                    mean_rtt=0.0978777429300023, first_ack_time=1.32),
        },
    }

    @staticmethod
    def _fingerprint(spec, n_ticks):
        trace = make_synthetic_trace("step-12-48")
        topo = build_topology(spec, trace, min_rtt=0.06, buffer_bdp=1.0, seed=9)
        flows = [Flow(0, CubicController()), Flow(1, CubicController(), start_time=1.0)]
        sim = NetworkSimulator(topo, flows, dt=0.01)
        rtt_samples = {0: [], 1: []}
        first_ack = {0: None, 1: None}
        for _ in range(n_ticks):
            records = sim.tick()
            for fid, record in records.items():
                if record.rtt > 0:
                    rtt_samples[fid].append(record.rtt)
                if first_ack[fid] is None and record.acked > 0:
                    first_ack[fid] = sim.now
        out = {}
        for fid, flow in sim.flows.items():
            out[fid] = dict(total_sent=flow.total_sent,
                            total_acked=flow.total_acked,
                            total_lost=flow.total_lost,
                            final_cwnd=flow.controller.cwnd,
                            mean_rtt=float(np.mean(rtt_samples[fid])),
                            first_ack_time=first_ack[fid])
        return out

    @pytest.mark.parametrize("spec", sorted(GOLDEN))
    def test_multi_hop_fingerprint_pinned(self, spec):
        observed = self._fingerprint(spec, self.N_TICKS)
        for fid, golden in self.GOLDEN[spec].items():
            for name, value in golden.items():
                assert observed[fid][name] == pytest.approx(value, rel=1e-9, abs=1e-12), (
                    f"{spec} flow {fid}: {name} drifted from the golden physics")


class TestMonitorReportStability:
    def test_monitor_report_identical_on_single_bottleneck(self):
        trace = make_synthetic_trace("step-12-48")
        wrapped = NetworkSimulator(make_link(trace), [Flow(0, CubicController())])
        built = NetworkSimulator(
            build_topology("single_bottleneck", trace, min_rtt=0.04, buffer_bdp=1.0, seed=11),
            [Flow(0, CubicController())],
        )
        for sim in (wrapped, built):
            for _ in range(120):
                sim.tick()
        report_a = wrapped.monitor_report(0)
        report_b = built.monitor_report(0)
        for name in ("throughput_pps", "loss_rate", "avg_queuing_delay", "n_acks",
                     "interval", "srtt", "min_rtt", "avg_rtt", "cwnd", "sent_pps"):
            assert getattr(report_a, name) == pytest.approx(getattr(report_b, name), abs=1e-12)
