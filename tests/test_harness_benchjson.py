"""Tests for the bench-JSON canonicalizer (the BENCH_ci.json trajectory)."""

import json

import pytest

from repro.harness.benchjson import (
    SCHEMA_VERSION,
    canonical_rows,
    format_store_diff,
    main,
    merge_bench_files,
    store_diff,
    store_rows,
    validate_bench_payload,
)

CANONICAL_KEYS = {"benchmark", "metric", "value", "unit", "commit"}


def payload(name="bench_grid", mean=0.25, extra_info=None):
    return {"benchmarks": [{"name": name, "stats": {"mean": mean},
                            "extra_info": extra_info or {}}]}


class TestCanonicalRows:
    def test_runtime_row_from_stats_mean(self):
        rows = canonical_rows(payload(mean=0.5), commit="abc123")
        assert rows == [{"benchmark": "bench_grid", "metric": "runtime_s",
                         "value": 0.5, "unit": "s", "commit": "abc123"}]

    def test_scalar_extras_become_rows(self):
        extras = {"certificates_per_sec": 120.0, "n_jobs": 2}
        rows = canonical_rows(payload(extra_info=extras), commit="abc")
        metrics = {row["metric"]: row for row in rows}
        assert metrics["certificates_per_sec"]["value"] == 120.0
        assert metrics["certificates_per_sec"]["unit"] == "1/s"
        assert metrics["n_jobs"]["unit"] == "count"

    def test_non_scalar_extras_are_dropped(self):
        extras = {"rows": [{"qcsat": 0.5}], "families": ["chain(2)"],
                  "label": "smoke", "flag": True, "speedup": 3.5}
        rows = canonical_rows(payload(extra_info=extras), commit="abc")
        metrics = {row["metric"] for row in rows}
        assert metrics == {"runtime_s", "speedup"}

    def test_unit_inference_for_unknown_metrics(self):
        extras = {"warmup_s": 1.0, "acks_per_sec": 9.0, "qcsat": 0.5}
        rows = canonical_rows(payload(extra_info=extras), commit="abc")
        units = {row["metric"]: row["unit"] for row in rows}
        assert units["warmup_s"] == "s"
        assert units["acks_per_sec"] == "1/s"
        assert units["qcsat"] == ""

    def test_every_row_has_the_stable_schema(self):
        rows = canonical_rows(payload(extra_info={"ticks": 100}), commit="deadbeef")
        for row in rows:
            assert set(row) == CANONICAL_KEYS
            assert row["commit"] == "deadbeef"
            assert isinstance(row["value"], float)


class TestMergeBenchFiles:
    def test_merges_and_sorts_deterministically(self, tmp_path):
        a = tmp_path / "bench-b.json"
        a.write_text(json.dumps(payload(name="zeta", extra_info={"ticks": 10})))
        b = tmp_path / "bench-a.json"
        b.write_text(json.dumps(payload(name="alpha")))
        merged = merge_bench_files([a, b], commit="c1")
        assert merged["version"] == SCHEMA_VERSION
        assert merged["commit"] == "c1"
        assert merged["sources"] == [str(a), str(b)]
        assert merged["skipped"] == []
        keys = [(row["benchmark"], row["metric"]) for row in merged["rows"]]
        assert keys == sorted(keys)
        # Byte-determinism: merging the same inputs twice is identical.
        again = merge_bench_files([a, b], commit="c1")
        assert json.dumps(merged, sort_keys=True) == json.dumps(again, sort_keys=True)

    def test_missing_and_corrupt_files_are_skipped(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(payload()))
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        missing = tmp_path / "missing.json"
        merged = merge_bench_files([good, corrupt, missing], commit="c2")
        assert merged["sources"] == [str(good)]
        assert merged["skipped"] == [str(corrupt), str(missing)]
        assert len(merged["rows"]) == 1

    def test_run_store_rows_merge_and_validate(self, tmp_path):
        from repro.harness.store import RunRecord, RunStore

        store = RunStore(tmp_path / "store")
        store.put(RunRecord(key="scheme=cubic trace=t", experiment="toy",
                            row={"utilization": 0.9, "scheme": "cubic", "ok": True}))
        rows = store_rows(RunStore(tmp_path / "store"), commit="c3")
        # Scalars only (strings/bools stay out of the trajectory).
        assert rows == [{"benchmark": "toy:scheme=cubic trace=t",
                         "metric": "utilization", "value": 0.9, "unit": "",
                         "commit": "c3"}]
        merged = merge_bench_files([], commit="c3", stores=[tmp_path / "store"])
        assert merged["sources"] == [str(tmp_path / "store")]
        assert merged["rows"] == rows
        validate_bench_payload(merged)

    def test_missing_store_is_skipped_not_created(self, tmp_path):
        # A typo'd --store path must not be mkdir'd and counted as a source.
        typo = tmp_path / "runs" / "topology_sweeep"
        merged = merge_bench_files([], commit="c4", stores=[typo])
        assert merged["sources"] == []
        assert merged["skipped"] == [str(typo)]
        assert not typo.exists()

    def test_validate_requires_files_and_rejects_stores(self, tmp_path):
        # An empty glob must not pass vacuously, and --store belongs to the
        # merge path (run stores have their own validator).
        with pytest.raises(SystemExit):
            main(["--validate"])
        with pytest.raises(SystemExit):
            main(["--validate", "--store", str(tmp_path), "x.json"])

    def test_validate_rejects_schema_drift(self):
        good = merge_bench_files([], commit="c5")
        validate_bench_payload(good)
        bad = dict(good)
        bad["rows"] = [{"benchmark": "b", "metric": "m", "value": "not-a-number",
                        "unit": "", "commit": "c5"}]
        with pytest.raises(ValueError, match="value"):
            validate_bench_payload(bad)


class TestMain:
    def test_writes_canonical_file(self, tmp_path, capsys):
        src = tmp_path / "bench-verifier.json"
        src.write_text(json.dumps(payload(extra_info={"certificates_per_sec": 10.0})))
        out = tmp_path / "BENCH_ci.json"
        code = main([str(src), "--commit", "sha1", "--out", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        written = json.loads(out.read_text())
        assert written["commit"] == "sha1"
        assert all(set(row) == CANONICAL_KEYS for row in written["rows"])

    def test_exit_code_one_when_no_rows(self, tmp_path):
        out = tmp_path / "BENCH_ci.json"
        code = main([str(tmp_path / "missing.json"), "--out", str(out)])
        assert code == 1
        written = json.loads(out.read_text())
        assert written["rows"] == [] and written["skipped"]

    def test_real_grid_payload_round_trips(self, tmp_path):
        # The shape bench_topology_generalization.py actually emits: runtime,
        # scalar throughput numbers, plus non-scalar per-cell rows that must
        # stay out of the trajectory.
        bench = {"benchmarks": [{
            "name": "test_topology_generalization_grid",
            "stats": {"mean": 1.5},
            "extra_info": {
                "certificates": 720, "certificates_per_sec": 890.9,
                "grid_wall_clock_s": 0.8, "n_jobs": 2,
                "families": ["single_bottleneck", "chain(2)"],
                "rows": [{"train_family": "mixed", "qcsat": 0.54}],
            },
        }]}
        src = tmp_path / "bench-generalization.json"
        src.write_text(json.dumps(bench))
        merged = merge_bench_files([src], commit="sha2")
        metrics = {row["metric"] for row in merged["rows"]}
        assert metrics == {"runtime_s", "certificates", "certificates_per_sec",
                           "grid_wall_clock_s", "n_jobs"}
        assert {row["unit"] for row in merged["rows"]} == {"s", "count", "1/s"}


class TestStoreDiff:
    @staticmethod
    def make_store(path, rows):
        from repro.harness.store import RunRecord, RunStore

        store = RunStore(path)
        for key, row in rows.items():
            store.put(RunRecord(key=key, row=row, experiment="e"))
        return store

    def test_identical_stores(self, tmp_path):
        rows = {"k1 #a": {"scheme": "cubic", "utilization": 0.8}}
        a = self.make_store(tmp_path / "a", rows)
        b = self.make_store(tmp_path / "b", rows)
        diff = store_diff(a, b)
        assert diff["identical"]
        assert diff["added"] == diff["removed"] == diff["changed"] == []
        assert "identical" in format_store_diff(diff)

    def test_added_removed_and_changed_cells(self, tmp_path):
        a = self.make_store(tmp_path / "a", {
            "k1 #a": {"scheme": "cubic", "utilization": 0.8, "loss_rate": 0.0},
            "k2 #a": {"scheme": "vegas", "utilization": 0.7},
        })
        b = self.make_store(tmp_path / "b", {
            "k1 #a": {"scheme": "cubic", "utilization": 0.9, "loss_rate": 0.0},
            "k3 #a": {"scheme": "bbr", "utilization": 0.6},
        })
        diff = store_diff(a, b)
        assert diff["added"] == ["k3 #a"]
        assert diff["removed"] == ["k2 #a"]
        (changed,) = diff["changed"]
        assert changed == {"key": "k1 #a", "metric": "utilization",
                           "a": 0.8, "b": 0.9, "delta": pytest.approx(0.1)}
        assert not diff["identical"]
        rendered = format_store_diff(diff, "old", "new")
        assert "only in old: k2 #a" in rendered and "only in new: k3 #a" in rendered
        assert "utilization" in rendered

    def test_non_scalar_changes_reported_without_delta(self, tmp_path):
        a = self.make_store(tmp_path / "a", {"k #a": {"scheme": "cubic", "u": 0.5}})
        b = self.make_store(tmp_path / "b", {"k #a": {"scheme": "bbr", "u": 0.5}})
        (changed,) = store_diff(a, b)["changed"]
        assert changed == {"key": "k #a", "metric": "scheme", "a": "cubic", "b": "bbr"}

    def test_main_store_diff_exit_codes(self, tmp_path, capsys):
        rows = {"k #a": {"utilization": 0.5}}
        self.make_store(tmp_path / "a", rows)
        self.make_store(tmp_path / "b", {"k #a": {"utilization": 0.6}})
        assert main(["--store-diff", str(tmp_path / "a"), str(tmp_path / "a")]) == 0
        assert main(["--store-diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        assert main(["--store-diff", str(tmp_path / "a"), str(tmp_path / "missing")]) == 2
        out = capsys.readouterr().out
        assert "identical" in out and "not a run store" in out

    def test_atol_suppresses_sub_tolerance_drift(self, tmp_path):
        a = self.make_store(tmp_path / "a", {"k #a": {"utilization": 0.8}})
        b = self.make_store(tmp_path / "b", {"k #a": {"utilization": 0.8 + 5e-13}})
        assert store_diff(a, b)["identical"] is False
        diff = store_diff(a, b, atol=1e-12)
        assert diff["identical"] and diff["atol"] == 1e-12
        assert "(atol 1e-12)" in format_store_diff(diff)

    def test_changed_line_reports_expected_got_and_atol(self, tmp_path):
        a = self.make_store(tmp_path / "a", {"k #a": {"utilization": 0.8}})
        b = self.make_store(tmp_path / "b", {"k #a": {"utilization": 0.9}})
        rendered = format_store_diff(store_diff(a, b, atol=1e-6), "exp", "got")
        assert "~ k #a :: utilization: expected 0.8 got 0.9" in rendered
        assert "delta +0.1" in rendered and "atol 1e-06" in rendered

    def test_main_atol_flag_gates_exit_code(self, tmp_path, capsys):
        self.make_store(tmp_path / "a", {"k #a": {"utilization": 0.5}})
        self.make_store(tmp_path / "b", {"k #a": {"utilization": 0.5 + 1e-13}})
        assert main(["--store-diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        assert main(["--store-diff", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--atol", "1e-12"]) == 0

    def test_main_store_diff_rejects_other_inputs(self, tmp_path):
        self.make_store(tmp_path / "a", {"k #a": {"u": 0.5}})
        with pytest.raises(SystemExit):
            main(["--store-diff", str(tmp_path / "a"), str(tmp_path / "a"),
                  "--validate"])


def test_schema_version_is_pinned():
    assert SCHEMA_VERSION == 1
    with pytest.raises(SystemExit):  # argparse: files are required
        main([])
