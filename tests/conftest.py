"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import make_actor
from repro.orca.observations import ObservationBuilder, ObservationConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def observation_config() -> ObservationConfig:
    return ObservationConfig()


@pytest.fixture
def observer(observation_config) -> ObservationBuilder:
    return ObservationBuilder(observation_config)


@pytest.fixture
def small_actor(observation_config, rng):
    """A small, deterministic actor network matching the observation dimension."""
    return make_actor(observation_config.state_dim, hidden_sizes=(16, 8), rng=rng)


@pytest.fixture(scope="session")
def quick_model():
    """A very small trained Canopy-shallow model shared across tests."""
    from repro.harness.models import get_trained_model

    return get_trained_model("canopy-shallow", training_steps=150, seed=11)


@pytest.fixture(scope="session")
def quick_orca_model():
    """A very small trained Orca baseline shared across tests."""
    from repro.harness.models import get_trained_model

    return get_trained_model("orca", training_steps=150, seed=11)
