"""Tests for the plain-text reporting helpers."""

from repro.harness.reporting import format_rows, format_table, print_experiment


def test_format_table_alignment():
    table = format_table(["name", "value"], [["cubic", 1.23456], ["bbr", 2.0]])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in table
    assert len(lines) == 4


def test_format_table_empty_rows():
    table = format_table(["a", "b"], [])
    assert "a" in table and "-" in table


def test_format_rows_uses_dict_keys():
    rows = [{"scheme": "cubic", "utilization": 0.9}, {"scheme": "orca", "utilization": 0.8}]
    rendered = format_rows(rows)
    assert "scheme" in rendered and "cubic" in rendered and "0.900" in rendered


def test_format_rows_empty():
    assert format_rows([]) == "(no rows)"


def test_format_rows_column_subset():
    rows = [{"a": 1, "b": 2}]
    rendered = format_rows(rows, columns=["b"])
    assert "b" in rendered and "a" not in rendered.splitlines()[0]


def test_print_experiment_outputs_rows_and_scalars(capsys):
    print_experiment("Demo", {"rows": [{"x": 1.0}], "figure": "5", "series": {"ignored": []}})
    out = capsys.readouterr().out
    assert "Demo" in out
    assert "figure: 5" in out
    assert "ignored" not in out
