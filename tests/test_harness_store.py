"""Tests for the resumable RunStore / RunRecord layer."""

import json

import pytest

from repro.harness.evaluate import EvaluationSettings
from repro.harness.parallel import ExperimentTask
from repro.harness.store import (
    RUN_RECORD_SCHEMA,
    SCHEMA_VERSION,
    RunRecord,
    RunStore,
    SchemaVersionError,
    canonical_json,
    current_commit,
    fingerprint,
    main,
    migrate_payload,
    migrate_store,
    validate_schema,
)
from repro.seeding import derive_seed
from repro.topology.families import topology_hop_seeds, topology_link_names
from repro.traces.trace import BandwidthTrace


def make_task(duration=2.0, seed=7, topology="single_bottleneck", tags=None):
    trace = BandwidthTrace.constant(12.0, duration=30.0, name="const-12")
    settings = EvaluationSettings(duration=duration, buffer_bdp=1.0,
                                  topology=topology, seed=seed)
    return ExperimentTask(scheme="cubic", trace=trace, settings=settings,
                          tags=tags or {})


class TestSchemaValidator:
    def test_valid_record_passes(self):
        RunRecord(key="k", row={"utilization": 0.9}).validate()

    def test_missing_required_key_rejected(self):
        payload = RunRecord(key="k", row={}).to_json()
        del payload["commit"]
        with pytest.raises(ValueError, match="commit"):
            validate_schema(payload, RUN_RECORD_SCHEMA)

    def test_wrong_types_rejected(self):
        payload = RunRecord(key="k", row={}).to_json()
        payload["row"] = ["not", "a", "dict"]
        with pytest.raises(ValueError, match="row"):
            validate_schema(payload, RUN_RECORD_SCHEMA)
        payload = RunRecord(key="k", row={}).to_json()
        payload["hop_seeds"] = {"bottleneck": "not-an-int"}
        with pytest.raises(ValueError, match="hop_seeds"):
            validate_schema(payload, RUN_RECORD_SCHEMA)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError, match="minLength|shorter"):
            validate_schema(RunRecord(key="", row={}).to_json(), RUN_RECORD_SCHEMA)

    def test_boolean_is_not_an_integer(self):
        with pytest.raises(ValueError):
            validate_schema(True, {"type": "integer"})


class TestCellKeys:
    def test_cell_key_stable_and_carries_scenario(self):
        task = make_task()
        assert task.cell_key() == make_task().cell_key()
        assert task.cell_key().startswith(task.scenario().key())

    def test_cell_key_distinguishes_runtime_knobs(self):
        base = make_task()
        assert base.cell_key() != make_task(duration=3.0).cell_key()
        assert base.cell_key() != make_task(tags={"replicate": 1}).cell_key()
        # Scenario-level differences change the readable prefix too.
        other = make_task(topology="chain(2)")
        assert other.scenario().key() != base.scenario().key()
        assert other.cell_key() != base.cell_key()

    def test_multiflow_cell_key(self):
        from repro.harness.fairness import MultiFlowTask

        a = MultiFlowTask(mode="friendliness", scheme="cubic", value=2)
        b = MultiFlowTask(mode="friendliness", scheme="cubic", value=2, buffer_bdp=5.0)
        assert a.cell_key() == MultiFlowTask(mode="friendliness", scheme="cubic",
                                             value=2).cell_key()
        assert a.cell_key() != b.cell_key()
        # Values that agree to 6 significant digits (the %g display) must
        # still get distinct keys — the fingerprint carries the exact value.
        close_a = MultiFlowTask(mode="rtt_friendliness", scheme="cubic", value=20.0)
        close_b = MultiFlowTask(mode="rtt_friendliness", scheme="cubic", value=20.0000001)
        assert close_a.cell_key() != close_b.cell_key()

    def test_fingerprint_is_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})


class TestRunRecord:
    def test_for_task_stamps_provenance(self):
        task = make_task(topology="chain(2)", seed=9)
        record = RunRecord.for_task(task, {"utilization": 1.0}, experiment="toy")
        record.validate()
        assert record.key == task.cell_key()
        assert record.experiment == "toy"
        assert record.commit == current_commit()
        assert record.spec == task.scenario().to_json()
        assert record.hop_seeds == topology_hop_seeds("chain(2)", "const-12", 9)

    def test_hop_seeds_match_builder_derivation(self):
        # The builders derive per-hop seeds as derive_seed(seed, "topology",
        # canonical-spec, trace, link); the provenance helper must agree.
        assert topology_link_names("chain(2)") == ["hop1", "hop2"]
        assert topology_link_names("chain") == ["hop1", "hop2"]  # default hops
        assert topology_link_names("dumbbell") == ["access-src", "bottleneck", "access-dst"]
        seeds = topology_hop_seeds("chain(2)", "const-12", 9)
        assert seeds == {name: derive_seed(9, "topology", "chain(2)", "const-12", name)
                         for name in ("hop1", "hop2")}
        # A bare "chain" spec derives with its canonical "chain(2)" form.
        assert topology_hop_seeds("chain", "const-12", 9) == seeds

    def test_multiflow_record_has_no_scenario(self):
        from repro.harness.fairness import MultiFlowTask

        task = MultiFlowTask(mode="friendliness", scheme="cubic", value=2)
        record = RunRecord.for_task(task, {"throughput_ratio": 1.0})
        record.validate()
        assert record.spec is None and record.hop_seeds == {}


class TestRunStore:
    def test_put_get_load_roundtrip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        record = RunRecord.for_task(make_task(), {"utilization": 0.5}, experiment="toy")
        store.put(record)
        assert len(store) == 1
        assert record.key in store
        # A fresh handle reads the same record back from disk.
        reloaded = RunStore(tmp_path / "store")
        assert reloaded.get(record.key).to_json() == record.to_json()
        assert reloaded.rows() == [{"utilization": 0.5}]

    def test_last_record_per_key_wins(self, tmp_path):
        store = RunStore(tmp_path)
        record = RunRecord(key="k", row={"v": 1})
        store.put(record)
        store.put(RunRecord(key="k", row={"v": 2}))
        assert len(store) == 1
        assert RunStore(tmp_path).get("k").row == {"v": 2}

    def test_mid_file_corruption_raises_with_location(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(RunRecord(key="k", row={}))
        with (tmp_path / "records.jsonl").open("a") as handle:
            handle.write("{not json}\n")
        store.put(RunRecord(key="k2", row={}))  # corruption is not the tail
        with pytest.raises(ValueError, match="records.jsonl:2"):
            RunStore(tmp_path).load()

    def test_torn_trailing_line_is_dropped_and_truncated(self, tmp_path):
        # A hard kill mid-append leaves a partial final line; resume must
        # keep every completed record and repair the file so the next append
        # starts on a fresh line.
        store = RunStore(tmp_path)
        store.put(RunRecord(key="k", row={"v": 1}))
        intact = (tmp_path / "records.jsonl").read_text()
        with (tmp_path / "records.jsonl").open("a") as handle:
            handle.write('{"schema_version": 1, "key": "k2", "exp')  # torn, no newline
        reopened = RunStore(tmp_path)
        assert reopened.keys() == ["k"]
        assert (tmp_path / "records.jsonl").read_text() == intact
        reopened.put(RunRecord(key="k2", row={"v": 2}))
        assert RunStore(tmp_path).keys() == ["k", "k2"]

    def test_canonical_json_normalizes_rows(self):
        assert canonical_json({"t": (1, 2), 3: "x"}) == {"t": [1, 2], "3": "x"}


def _v1_payload(**extra):
    """A schema-v1 record payload as PR 1-7 checkouts wrote it (no producer)."""
    payload = RunRecord.for_task(make_task(), {"utilization": 1.0},
                                 experiment="toy").to_json()
    del payload["producer"]
    payload["schema_version"] = 1
    payload.update(extra)
    return payload


class TestSchemaVersioning:
    def test_old_version_rejected_with_migrate_hint(self, tmp_path):
        (tmp_path / "records.jsonl").write_text(json.dumps(_v1_payload()) + "\n")
        with pytest.raises(SchemaVersionError) as excinfo:
            RunStore(tmp_path).load()
        message = str(excinfo.value)
        assert "records.jsonl:1" in message
        assert "repro.harness.store migrate" in message  # pointed, not generic

    def test_newer_version_rejected_pointing_at_the_checkout(self):
        with pytest.raises(SchemaVersionError, match="newer.*update the checkout"):
            RunRecord.from_json(_v1_payload(schema_version=SCHEMA_VERSION + 1,
                                            producer="serial"))

    def test_old_version_is_not_swallowed_as_a_torn_tail(self, tmp_path):
        # Torn-tail tolerance must not quietly drop (and then truncate!) a
        # store whose only problem is its age — even on the final line.
        store = RunStore(tmp_path)
        store.put(RunRecord(key="k", row={}))
        with (tmp_path / "records.jsonl").open("a") as handle:
            handle.write(json.dumps(_v1_payload()) + "\n")
        before = (tmp_path / "records.jsonl").read_text()
        with pytest.raises(SchemaVersionError, match="records.jsonl:2"):
            RunStore(tmp_path).load()
        assert (tmp_path / "records.jsonl").read_text() == before

    def test_validate_cli_surfaces_the_migrate_hint(self, tmp_path, capsys):
        (tmp_path / "records.jsonl").write_text(json.dumps(_v1_payload()) + "\n")
        assert main([str(tmp_path)]) == 1
        assert "migrate" in capsys.readouterr().out


class TestMigration:
    def test_migrate_payload_upgrades_v1_and_is_idempotent(self):
        upgraded = migrate_payload(_v1_payload())
        assert upgraded["schema_version"] == SCHEMA_VERSION
        assert upgraded["producer"] == "unknown"  # honest: provenance predates v2
        RunRecord.from_json(upgraded)  # passes current-schema validation
        assert migrate_payload(upgraded) == upgraded

    def test_migrate_payload_rejects_newer_and_non_records(self):
        with pytest.raises(SchemaVersionError, match="newer"):
            migrate_payload(_v1_payload(schema_version=SCHEMA_VERSION + 1))
        with pytest.raises(ValueError, match="schema_version"):
            migrate_payload({"key": "k"})

    def test_migrate_store_in_place_preserving_rows_and_order(self, tmp_path):
        current = RunRecord.for_task(make_task(seed=8), {"utilization": 0.5},
                                     experiment="toy", producer="serial")
        lines = [json.dumps(_v1_payload()), json.dumps(current.to_json())]
        (tmp_path / "records.jsonl").write_text("\n".join(lines) + "\n"
                                                + '{"torn": "ta')  # interrupted append
        total, upgraded, torn = migrate_store(tmp_path)
        assert (total, upgraded, torn) == (2, 1, True)
        records = RunStore(tmp_path).load()
        assert len(records) == 2
        migrated = records[_v1_payload()["key"]]
        assert migrated.producer == "unknown"
        assert migrated.row == {"utilization": 1.0}  # rows untouched
        assert records[current.key].producer == "serial"
        # Idempotent: a second pass upgrades nothing and changes no bytes.
        before = (tmp_path / "records.jsonl").read_text()
        assert migrate_store(tmp_path) == (2, 0, False)
        assert (tmp_path / "records.jsonl").read_text() == before

    def test_migrate_cli(self, tmp_path, capsys):
        (tmp_path / "records.jsonl").write_text(json.dumps(_v1_payload()) + "\n")
        assert main(["migrate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"1 records at schema v{SCHEMA_VERSION} (1 upgraded)" in out
        assert main([str(tmp_path)]) == 0  # validates clean after the upgrade
        assert main(["migrate", str(tmp_path / "missing.jsonl")]) == 1


class TestStoreCli:
    def test_validate_ok(self, tmp_path, capsys):
        store = RunStore(tmp_path / "s")
        store.put(RunRecord.for_task(make_task(), {"utilization": 1.0}, experiment="toy"))
        assert main([str(tmp_path / "s")]) == 0
        assert "1 valid records" in capsys.readouterr().out

    def test_validate_rejects_invalid_and_missing(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"key": "k"}) + "\n")
        assert main([str(bad)]) == 1
        assert main([str(tmp_path / "nope.jsonl")]) == 1
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main([str(empty)]) == 1
