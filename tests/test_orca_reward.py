"""Tests for the Orca power-metric reward (Eqs. 2–3)."""

import pytest

from repro.cc.netsim import MonitorReport
from repro.orca.reward import OrcaRewardConfig, orca_reward


def make_report(throughput=1000.0, loss=0.0, delay=0.0, srtt=0.05, min_rtt=0.05, avg_rtt=None):
    return MonitorReport(throughput_pps=throughput, loss_rate=loss, avg_queuing_delay=delay,
                         n_acks=throughput * 0.2, interval=0.2, srtt=srtt, min_rtt=min_rtt,
                         avg_rtt=avg_rtt if avg_rtt is not None else srtt,
                         cwnd=20.0, sent_pps=throughput)


class TestConfig:
    def test_invalid_zeta(self):
        with pytest.raises(ValueError):
            OrcaRewardConfig(zeta=-1.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            OrcaRewardConfig(beta=1.0)

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            OrcaRewardConfig(min_delay_floor=0.0)


class TestReward:
    def test_perfect_conditions_give_reward_one(self):
        report = make_report(throughput=1000.0, avg_rtt=0.05, min_rtt=0.05)
        assert orca_reward(report, max_throughput_pps=1000.0) == pytest.approx(1.0)

    def test_reward_decreases_with_lower_throughput(self):
        high = orca_reward(make_report(throughput=1000.0), 1000.0)
        low = orca_reward(make_report(throughput=400.0), 1000.0)
        assert low < high

    def test_reward_decreases_with_delay(self):
        base = orca_reward(make_report(avg_rtt=0.05), 1000.0)
        delayed = orca_reward(make_report(avg_rtt=0.25), 1000.0)
        assert delayed < base

    def test_delay_tolerance_band(self):
        # Within beta * d_min the delay is floored to d_min (no penalty).
        config = OrcaRewardConfig(beta=1.5)
        at_floor = orca_reward(make_report(avg_rtt=0.05), 1000.0, config)
        slightly_above = orca_reward(make_report(avg_rtt=0.07), 1000.0, config)
        assert slightly_above == pytest.approx(at_floor)

    def test_loss_penalty(self):
        clean = orca_reward(make_report(loss=0.0), 1000.0)
        lossy = orca_reward(make_report(loss=0.2), 1000.0)
        assert lossy < clean

    def test_loss_can_drive_reward_negative(self):
        reward = orca_reward(make_report(throughput=1000.0, loss=0.5), 1000.0,
                             OrcaRewardConfig(zeta=10.0))
        assert reward < 0.0

    def test_reward_clipped_to_configured_range(self):
        config = OrcaRewardConfig(zeta=10.0)
        reward = orca_reward(make_report(throughput=1000.0, loss=1.0), 1000.0, config)
        assert reward >= -config.zeta

    def test_zero_rtt_report_handled(self):
        report = make_report(srtt=0.0, min_rtt=0.0, avg_rtt=0.0)
        value = orca_reward(report, 1000.0)
        assert value == value  # not NaN
