"""Tests for BoxSpace."""

import numpy as np
import pytest

from repro.rl.spaces import BoxSpace


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        BoxSpace(np.array([1.0]), np.array([0.0]))


def test_contains_and_clip():
    space = BoxSpace(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
    assert space.contains(np.array([0.0, 1.0]))
    assert not space.contains(np.array([0.0, 3.0]))
    clipped = space.clip(np.array([5.0, -5.0]))
    assert np.allclose(clipped, [1.0, 0.0])


def test_contains_rejects_wrong_shape():
    space = BoxSpace(np.zeros(3), np.ones(3))
    assert not space.contains(np.zeros(2))


def test_dim_and_shape():
    space = BoxSpace(np.zeros(4), np.ones(4))
    assert space.dim == 4
    assert space.shape == (4,)


def test_sample_within_bounds():
    space = BoxSpace(np.array([-2.0, 0.0]), np.array([2.0, 1.0]))
    rng = np.random.default_rng(0)
    for _ in range(50):
        sample = space.sample(rng)
        assert space.contains(sample)


def test_broadcast_scalar_bounds():
    space = BoxSpace(np.zeros(3), np.array(1.0))
    assert space.shape == (3,)
    assert space.contains(np.array([0.5, 0.5, 0.5]))
