"""Tests for Flow and NetworkSimulator: windowing, ack delay, stats, reports."""

import pytest

from repro.cc.base import MIN_CWND, CongestionController, TickFeedback
from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.netsim import NetworkSimulator
from repro.traces.trace import BandwidthTrace, mbps_to_pps


class FixedWindowController(CongestionController):
    """Keeps a constant congestion window (for deterministic tests)."""

    name = "fixed"

    def on_tick(self, feedback: TickFeedback) -> None:  # pragma: no cover - trivial
        pass


def make_sim(mbps=12.0, min_rtt=0.05, buffer_bdp=2.0, cwnd=20.0, dt=0.01, n_flows=1,
             start_times=None, controller_factory=None):
    trace = BandwidthTrace.constant(mbps, duration=120.0)
    link = BottleneckLink(trace, min_rtt=min_rtt, buffer_bdp=buffer_bdp)
    flows = []
    for i in range(n_flows):
        controller = controller_factory() if controller_factory else FixedWindowController(cwnd)
        start = start_times[i] if start_times else 0.0
        flows.append(Flow(i, controller, start_time=start))
    return NetworkSimulator(link, flows, dt=dt)


class TestFlow:
    def test_invalid_times(self):
        with pytest.raises(ValueError):
            Flow(0, FixedWindowController(), start_time=-1.0)
        with pytest.raises(ValueError):
            Flow(0, FixedWindowController(), start_time=5.0, stop_time=5.0)

    def test_is_active_window(self):
        flow = Flow(0, FixedWindowController(), start_time=1.0, stop_time=2.0)
        assert not flow.is_active(0.5)
        assert flow.is_active(1.5)
        assert not flow.is_active(2.5)

    def test_send_allowance_respects_window(self):
        flow = Flow(0, FixedWindowController(10.0))
        flow.inflight = 10.0
        assert flow.send_allowance(0.0, 0.01, 0.05) == pytest.approx(0.0)

    def test_inactive_flow_sends_nothing(self):
        flow = Flow(0, FixedWindowController(10.0), start_time=5.0)
        assert flow.send_allowance(0.0, 0.01, 0.05) == 0.0

    def test_reset_restores_initial_state(self):
        flow = Flow(0, FixedWindowController(10.0))
        flow.inflight = 5.0
        flow.total_sent = 100.0
        flow.reset()
        assert flow.inflight == 0.0
        assert flow.total_sent == 0.0


class TestSimulator:
    def test_requires_flows_and_unique_ids(self):
        trace = BandwidthTrace.constant(12.0)
        link = BottleneckLink(trace, min_rtt=0.05)
        with pytest.raises(ValueError):
            NetworkSimulator(link, [], dt=0.01)
        with pytest.raises(ValueError):
            NetworkSimulator(link, [Flow(0, FixedWindowController()), Flow(0, FixedWindowController())])

    def test_time_advances_by_dt(self):
        sim = make_sim(dt=0.02)
        sim.tick()
        sim.tick()
        assert sim.now == pytest.approx(0.04)

    def test_acks_arrive_after_propagation_rtt(self):
        sim = make_sim(min_rtt=0.1, cwnd=5.0, dt=0.01)
        first_ack_time = None
        for _ in range(40):
            records = sim.tick()
            if records[0].acked > 0 and first_ack_time is None:
                first_ack_time = sim.now
        assert first_ack_time is not None
        assert first_ack_time >= 0.1 - 1e-6  # cannot beat the propagation delay

    def test_throughput_matches_capacity_when_window_large(self):
        sim = make_sim(mbps=12.0, cwnd=1000.0, buffer_bdp=5.0)
        result = sim.run(5.0)
        stats = result.stats_for(0)
        delivered_pps = stats.acked[200:].sum() / (stats.acked[200:].size * result.dt)
        assert delivered_pps == pytest.approx(mbps_to_pps(12.0), rel=0.1)

    def test_throughput_window_limited(self):
        # With a tiny window the flow cannot fill the pipe: thr ≈ cwnd / RTT.
        sim = make_sim(mbps=96.0, cwnd=10.0, min_rtt=0.1, buffer_bdp=5.0)
        result = sim.run(5.0)
        stats = result.stats_for(0)
        delivered_pps = stats.acked[200:].sum() / (stats.acked[200:].size * result.dt)
        assert delivered_pps == pytest.approx(10.0 / 0.1, rel=0.2)
        assert delivered_pps < mbps_to_pps(96.0) * 0.5

    def test_queue_builds_and_drops_when_overdriven(self):
        sim = make_sim(mbps=6.0, cwnd=10_000.0, buffer_bdp=0.5)
        sim.run(3.0)
        assert sim.link.total_dropped > 0.0
        stats = sim.stats[0]
        assert stats.lost.sum() > 0.0

    def test_queuing_delay_bounded_by_buffer(self):
        buffer_bdp = 2.0
        min_rtt = 0.05
        sim = make_sim(mbps=12.0, cwnd=10_000.0, buffer_bdp=buffer_bdp, min_rtt=min_rtt)
        result = sim.run(5.0)
        stats = result.stats_for(0)
        max_delay = stats.queuing_delay.max()
        # Max queuing delay is roughly buffer / capacity = buffer_bdp * min_rtt.
        assert max_delay <= buffer_bdp * min_rtt * 1.5 + 0.05

    def test_conservation_acked_plus_lost_le_sent(self):
        sim = make_sim(mbps=12.0, cwnd=200.0, buffer_bdp=0.5)
        sim.run(5.0)
        flow = sim.flows[0]
        assert flow.total_acked + flow.total_lost <= flow.total_sent + 1e-6

    def test_flow_stats_columns_aligned(self):
        sim = make_sim()
        result = sim.run(1.0)
        stats = result.stats_for(0)
        n = stats.times.size
        for column in (stats.acked, stats.lost, stats.sent, stats.rtt, stats.queuing_delay,
                       stats.cwnd, stats.inflight):
            assert column.size == n

    def test_delayed_start_flow_stays_idle(self):
        sim = make_sim(n_flows=2, start_times=[0.0, 2.0], cwnd=50.0)
        sim.run(1.0)
        assert sim.flows[1].total_sent == 0.0
        sim.run_more = None

    def test_two_flows_share_capacity(self):
        sim = make_sim(mbps=24.0, n_flows=2, cwnd=500.0, buffer_bdp=2.0)
        result = sim.run(6.0)
        thr0 = result.stats_for(0).acked[200:].sum()
        thr1 = result.stats_for(1).acked[200:].sum()
        total_pps = (thr0 + thr1) / ((result.stats_for(0).acked.size - 200) * result.dt)
        assert total_pps == pytest.approx(mbps_to_pps(24.0), rel=0.15)
        assert thr0 == pytest.approx(thr1, rel=0.35)  # roughly fair under FIFO

    def test_monitor_report_aggregates(self):
        sim = make_sim(mbps=12.0, cwnd=100.0, buffer_bdp=2.0)
        for _ in range(50):
            sim.tick()
        report = sim.monitor_report(0)
        assert report.interval == pytest.approx(0.5, rel=1e-6)
        assert report.throughput_pps > 0.0
        assert 0.0 <= report.loss_rate <= 1.0
        assert report.cwnd == pytest.approx(100.0)
        # After the report the accumulators reset.
        report2 = sim.monitor_report(0)
        assert report2.n_acks == pytest.approx(0.0)

    def test_rtt_includes_queuing_delay(self):
        sim = make_sim(mbps=6.0, cwnd=10_000.0, buffer_bdp=3.0, min_rtt=0.05)
        sim.run(4.0)
        report = sim.monitor_report(0)
        assert report.avg_rtt > 0.05
        assert report.min_rtt >= 0.05 - 1e-9


def test_cubic_in_simulator_reaches_high_utilization():
    sim = make_sim(mbps=24.0, buffer_bdp=1.0, controller_factory=CubicController)
    result = sim.run(10.0)
    stats = result.stats_for(0)
    delivered_pps = stats.acked[300:].sum() / (stats.acked[300:].size * result.dt)
    assert delivered_pps > 0.7 * mbps_to_pps(24.0)


def test_min_cwnd_enforced():
    controller = FixedWindowController(10.0)
    controller.set_cwnd(0.001)
    assert controller.cwnd == pytest.approx(MIN_CWND)
