"""IBP propagation through numpy networks: soundness and shape checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.box import Box
from repro.abstract.propagate import propagate_layer, propagate_mlp, propagate_sequential
from repro.nn.layers import Dense, Identity, ReLU, Sequential, Tanh
from repro.nn.mlp import MLP, make_actor


def test_propagate_dense_matches_affine():
    rng = np.random.default_rng(0)
    layer = Dense(3, 2, rng=rng)
    box = Box.from_bounds([-1.0, 0.0, 0.5], [1.0, 1.0, 0.5])
    result = propagate_layer(layer, box)
    expected = box.affine(layer.weight, layer.bias)
    assert np.allclose(result.lo, expected.lo)
    assert np.allclose(result.hi, expected.hi)


def test_propagate_identity_is_noop():
    box = Box.from_bounds([0.0], [1.0])
    result = propagate_layer(Identity(), box)
    assert np.allclose(result.lo, box.lo)
    assert np.allclose(result.hi, box.hi)


def test_propagate_unknown_layer_raises():
    class Weird:
        pass

    with pytest.raises(TypeError):
        propagate_layer(Weird(), Box.point([0.0]))


def test_propagate_mlp_dimension_check():
    model = MLP(4, (8,), 1, rng=np.random.default_rng(1))
    with pytest.raises(ValueError):
        propagate_mlp(model, Box.point([0.0, 0.0]))


def test_point_box_matches_concrete_forward():
    rng = np.random.default_rng(2)
    model = make_actor(6, hidden_sizes=(8, 4), rng=rng)
    x = rng.normal(size=6)
    box = Box.point(x)
    out_box = propagate_mlp(model, box)
    out_concrete = model.forward(x.reshape(1, -1))[0]
    assert np.allclose(out_box.center, out_concrete, atol=1e-9)
    assert np.allclose(out_box.deviation, 0.0, atol=1e-9)


def test_actor_output_bounded_by_tanh():
    rng = np.random.default_rng(3)
    model = make_actor(5, hidden_sizes=(16, 8), rng=rng)
    box = Box.from_bounds(np.full(5, -10.0), np.full(5, 10.0))
    out = propagate_mlp(model, box)
    assert out.lo[0] >= -1.0 - 1e-9
    assert out.hi[0] <= 1.0 + 1e-9


def test_wider_input_gives_wider_output():
    rng = np.random.default_rng(4)
    model = make_actor(4, hidden_sizes=(8,), rng=rng)
    center = rng.normal(size=4)
    narrow = propagate_mlp(model, Box(center, np.full(4, 0.01)))
    wide = propagate_mlp(model, Box(center, np.full(4, 0.5)))
    assert wide.deviation[0] >= narrow.deviation[0] - 1e-12


def test_propagate_sequential_chains_layers():
    rng = np.random.default_rng(5)
    layers = [Dense(3, 3, rng=rng), ReLU(), Dense(3, 1, rng=rng), Tanh()]
    box = Box.from_bounds([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0])
    result = propagate_sequential(layers, box)
    assert result.lo.shape == (1,)
    nested = propagate_layer(Sequential(layers), box)
    assert np.allclose(nested.lo, result.lo)


@given(st.integers(0, 10_000), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_ibp_soundness_random_networks(seed, t):
    """Concrete outputs of points inside the box lie inside the IBP bounds."""
    rng = np.random.default_rng(seed)
    model = make_actor(4, hidden_sizes=(8, 4), rng=rng)
    lo = rng.uniform(-2.0, 0.0, size=4)
    hi = lo + rng.uniform(0.0, 2.0, size=4)
    box = Box.from_bounds(lo, hi)
    point = lo + t * (hi - lo)
    out_box = propagate_mlp(model, box)
    out_concrete = model.forward(point.reshape(1, -1))[0]
    assert out_box.contains(out_concrete, tol=1e-7)
