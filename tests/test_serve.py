"""Tests for the lease-based serve subsystem (scheduler daemon, leases, status).

The determinism contract under test: ``serial == pooled == served ==
resumed``, byte-identical rows — including when a worker is SIGKILLed
mid-cell and its lease is reclaimed.
"""

import json
from dataclasses import dataclass

import pytest

from repro.harness.registry import REGISTRY
from repro.harness.store import RunStore
from repro.serve.daemon import serve_experiment
from repro.serve.lease import LEASES_FILENAME, LeaseJournal, LeaseTable
from repro.serve.status import format_status, read_status

#: A cheap classical workload_stress mini-grid (no model training): 2 schemes
#: x 2 seeds x 1 trace = 4 cells of a 2-second contended run each.
MINI_GRID = {
    "schemes": ("cubic", "vegas"),
    "topology": ("single_bottleneck",),
    "workload": ("poisson(0.1)",),
    "duration": 2.0,
    "n_traces": 1,
    "seeds": (1, 2),
}


@pytest.fixture(autouse=True)
def _zoo_isolation(monkeypatch, tmp_path):
    """Pin the model zoo env var so serve_experiment's setdefault cannot leak
    a per-test store path into the process environment."""
    monkeypatch.setenv("REPRO_MODEL_ZOO", str(tmp_path / "zoo"))


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# --------------------------------------------------------------------- #
# LeaseTable semantics
# --------------------------------------------------------------------- #
class TestLeaseTable:
    def test_grant_dedupes_inflight_and_completed(self):
        table = LeaseTable(ttl_s=10.0, clock=FakeClock())
        assert table.grant("cell-a", "w0") is not None
        # In-flight dedupe: an actively-leased key cannot be leased again.
        assert table.grant("cell-a", "w1") is None
        assert table.complete("cell-a", "w0")
        # Completed cells are never re-leased either.
        assert table.grant("cell-a", "w1") is None
        assert table.completed == {"cell-a": "w0"}

    def test_expiry_needs_missed_heartbeats_and_renewal_defers(self):
        clock = FakeClock()
        table = LeaseTable(ttl_s=10.0, clock=clock)
        table.grant("cell-a", "w0")
        clock.advance(9.0)
        assert table.expired() == []
        assert table.renew("cell-a", "w0")  # heartbeat pushes expiry out
        clock.advance(9.0)
        assert table.expired() == []
        clock.advance(2.0)  # 11s since the renewal: lapsed
        assert [lease.key for lease in table.expired()] == ["cell-a"]
        # A renewal from a worker that does not hold the lease is refused.
        assert not table.renew("cell-a", "w1")

    def test_reclaim_allows_regrant_and_stale_result_is_rejected(self):
        table = LeaseTable(ttl_s=10.0, clock=FakeClock())
        table.grant("cell-a", "w0")
        assert table.reclaim("cell-a", reason="died") is not None
        lease = table.grant("cell-a", "w1")  # re-lease to a healthy worker
        assert lease is not None and lease.worker == "w1"
        # First result wins: the presumed-dead worker's late result is stale.
        assert not table.complete("cell-a", "w0")
        assert table.complete("cell-a", "w1")
        assert table.completed == {"cell-a": "w1"}
        assert table.grants("cell-a") == 2

    def test_release_worker_reclaims_everything_it_held(self):
        table = LeaseTable(ttl_s=10.0, clock=FakeClock())
        table.grant("cell-a", "w0")
        table.grant("cell-b", "w0")
        table.grant("cell-c", "w1")
        released = table.release_worker("w0", reason="died")
        assert sorted(lease.key for lease in released) == ["cell-a", "cell-b"]
        assert table.held_by("w0") == []
        assert table.held_by("w1") == ["cell-c"]

    def test_fail_and_fail_unleased(self):
        table = LeaseTable(ttl_s=10.0, clock=FakeClock())
        table.grant("cell-a", "w0")
        assert table.fail("cell-a", "w0", "ValueError: boom")
        table.fail_unleased("cell-b", "lease limit reached")
        assert set(table.failed) == {"cell-a", "cell-b"}

    def test_transitions_are_journaled(self, tmp_path):
        journal = LeaseJournal(tmp_path)
        table = LeaseTable(journal, ttl_s=5.0, clock=FakeClock())
        table.grant("cell-a", "w0")
        table.reclaim("cell-a", reason="expired")
        table.grant("cell-a", "w1")
        table.complete("cell-a", "w0")  # stale
        table.complete("cell-a", "w1")
        events = [event["event"] for event in journal.read()]
        assert events == ["lease", "reclaim", "lease", "stale_result", "complete"]
        reclaim = journal.read()[1]
        assert reclaim["reason"] == "expired" and reclaim["worker"] == "w0"


# --------------------------------------------------------------------- #
# LeaseJournal on-disk behavior
# --------------------------------------------------------------------- #
class TestLeaseJournal:
    def test_append_read_roundtrip_sorted_keys(self, tmp_path):
        journal = LeaseJournal(tmp_path, clock=FakeClock(12.3456))
        journal.append("serve_start", experiment="toy", cells=3)
        journal.append("lease", key="cell-a", worker="w0")
        events = journal.read()
        assert [event["event"] for event in events] == ["serve_start", "lease"]
        assert events[0]["t"] == 12.346  # wall time rounded for humans
        first_line = (tmp_path / LEASES_FILENAME).read_text().splitlines()[0]
        assert first_line == json.dumps(json.loads(first_line), sort_keys=True)

    def test_torn_tail_tolerated_mid_corruption_raises(self, tmp_path):
        journal = LeaseJournal(tmp_path)
        journal.append("serve_start", experiment="toy")
        journal.append("lease", key="cell-a", worker="w0")
        path = tmp_path / LEASES_FILENAME
        with path.open("a") as handle:
            handle.write('{"event": "complete", "key"')  # torn mid-append
        assert [event["event"] for event in journal.read()] == ["serve_start", "lease"]
        # Corruption that is *not* the tail is a real error, not a torn append.
        path.write_text('{"event": "serve_start"}\n{broken}\n{"event": "lease"}\n')
        with pytest.raises(ValueError, match="leases.jsonl:2"):
            journal.read()

    def test_missing_journal_reads_empty(self, tmp_path):
        assert LeaseJournal(tmp_path / "nothing").read() == []


# --------------------------------------------------------------------- #
# Status replay
# --------------------------------------------------------------------- #
class TestStatus:
    def test_missing_journal_raises_pointedly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no lease journal"):
            read_status(tmp_path)

    def test_replay_describes_the_latest_session(self, tmp_path):
        clock = FakeClock(100.0)
        journal = LeaseJournal(tmp_path, clock=clock)
        # A first (crashed) session that must not leak into the status.
        journal.append("serve_start", experiment="old", cells=9, cached=0,
                       pending=9, workers=1, ttl_s=5.0, pid=1)
        journal.append("lease", key="stale-cell", worker="w0")
        # The live session.
        journal.append("serve_start", experiment="toy", cells=4, cached=1,
                       pending=3, workers=2, ttl_s=5.0, pid=2)
        journal.append("worker_spawn", worker="w0", pid=11)
        journal.append("worker_spawn", worker="w1", pid=12)
        clock.advance(1.0)
        journal.append("lease", key="cell-a", worker="w0")
        journal.append("lease", key="cell-b", worker="w1")
        journal.append("complete", key="cell-a", worker="w0")
        journal.append("reclaim", key="cell-b", worker="w1", reason="died")
        journal.append("worker_dead", worker="w1", pid=12)
        status = read_status(tmp_path, now=clock())
        assert status["experiment"] == "toy" and status["running"]
        assert status["cells"] == 4 and status["cached"] == 1
        assert status["completed"] == 1 and status["reclaims"] == 1
        assert status["leased"] == {} and status["outstanding"] == 2
        assert status["workers"]["w0"]["alive"]
        assert not status["workers"]["w1"]["alive"]
        assert "stale-cell" not in str(status)

        journal.append("serve_done", experiment="toy", completed=4, failed=0,
                       reclaims=1, wall_clock_s=2.5)
        done = read_status(tmp_path, now=clock())
        assert not done["running"] and done["elapsed_s"] == 2.5

        rendered = format_status(done)
        assert "experiment: toy (done)" in rendered
        assert "4 total = 1 cached" in rendered
        assert "reclaims: 1" in rendered
        assert "w1: dead" in rendered


# --------------------------------------------------------------------- #
# Served grids: determinism, crash recovery, resume
# --------------------------------------------------------------------- #
def _rows_by_key(store_dir) -> dict:
    return {key: json.dumps(record.row, sort_keys=True)
            for key, record in RunStore(store_dir).load().items()}


class TestServeDeterminism:
    def test_served_rows_byte_identical_to_serial(self, tmp_path):
        serial = REGISTRY.run("workload_stress", MINI_GRID, n_jobs=1,
                              store=RunStore(tmp_path / "serial"))
        served = serve_experiment("workload_stress", MINI_GRID,
                                  store=tmp_path / "served", workers=2,
                                  timeout_s=300.0)
        serial_rows = _rows_by_key(tmp_path / "serial")
        served_rows = _rows_by_key(tmp_path / "served")
        assert set(serial_rows) == set(served_rows) and serial_rows
        assert serial_rows == served_rows  # byte-identical per cell
        # The aggregated result shape matches the in-process front door too.
        assert served["rows"] == serial["rows"]
        assert served["served_cells"] == 4 and served["reclaims"] == 0
        # Producer provenance distinguishes the two paths.
        producers = {record.producer
                     for record in RunStore(tmp_path / "served").records()}
        assert producers and all(p.startswith("serve:") for p in producers)
        assert {record.producer
                for record in RunStore(tmp_path / "serial").records()} == {"serial"}

    def test_sigkilled_worker_mid_cell_recovers_byte_identical(self, tmp_path):
        """Kill -9 a worker mid-cell: the sweep still completes and every row
        matches the serial baseline byte for byte."""
        REGISTRY.run("workload_stress", MINI_GRID, n_jobs=1,
                     store=RunStore(tmp_path / "serial"))
        served = serve_experiment("workload_stress", MINI_GRID,
                                  store=tmp_path / "served", workers=2,
                                  chaos_kill=2, ttl_s=5.0, timeout_s=300.0)
        assert served["reclaims"] >= 1
        assert _rows_by_key(tmp_path / "serial") == _rows_by_key(tmp_path / "served")
        # The journal shows the kill: a worker died and its cell was reclaimed.
        events = LeaseJournal(tmp_path / "served").read()
        kinds = [event["event"] for event in events]
        assert "reclaim" in kinds and "worker_dead" in kinds
        status = read_status(tmp_path / "served")
        assert not status["running"]
        assert status["completed"] == 4 and status["reclaims"] >= 1
        assert any(not state["alive"] for state in status["workers"].values())

    def test_inline_mode_and_fully_cached_resume(self, tmp_path):
        serial = REGISTRY.run("workload_stress", MINI_GRID, n_jobs=1)
        inline = serve_experiment("workload_stress", MINI_GRID,
                                  store=tmp_path / "store", workers=0)
        assert inline["rows"] == serial["rows"]
        assert inline["served_cells"] == 4
        before = (tmp_path / "store" / "records.jsonl").read_text()
        # Serving again against the same store finds everything cached.
        resumed = serve_experiment("workload_stress", MINI_GRID,
                                   store=tmp_path / "store", workers=2)
        assert resumed["served_cells"] == 0 and resumed["cached_cells"] == 4
        assert resumed["rows"] == serial["rows"]
        assert (tmp_path / "store" / "records.jsonl").read_text() == before

    def test_requires_store(self):
        with pytest.raises(ValueError, match="requires a store"):
            serve_experiment("workload_stress", MINI_GRID)


# --------------------------------------------------------------------- #
# Failure surfacing (deterministic runner errors)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ToyTask:
    name: str

    def cell_key(self) -> str:
        return f"toy={self.name}"


def _toy_runner(task):
    if task.name == "boom":
        raise RuntimeError("kaboom")
    return {"value": len(task.name)}


@REGISTRY.register("serve_toy", axes={"names": ("a", "bb", "ccc")},
                   runner=_toy_runner, description="serve test fixture grid")
def _serve_toy_build(axes):
    return [_ToyTask(name) for name in axes["names"]]


class TestServeFailures:
    def test_raising_cell_fails_the_sweep_without_retry(self, tmp_path):
        with pytest.raises(RuntimeError, match="toy=boom.*kaboom"):
            serve_experiment("serve_toy", {"names": ("a", "boom", "ccc")},
                             store=tmp_path / "store", workers=1,
                             timeout_s=120.0)
        # The healthy cells still streamed to the store before the failure
        # surfaced, and the journal marks the cell failed (not reclaimed —
        # a deterministic error would fail identically when re-leased).
        store = RunStore(tmp_path / "store")
        assert "toy=a" in store and "toy=boom" not in store
        kinds = [event["event"]
                 for event in LeaseJournal(tmp_path / "store").read()]
        assert "failed" in kinds and "reclaim" not in kinds
        status = read_status(tmp_path / "store")
        assert status["failed"] == 1
