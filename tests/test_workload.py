"""Tests for the workload subsystem: specs, arrivals, responsive flows, churn.

Covers the comma-free spec grammar and its canonical forms, the determinism
of seeded Poisson arrival schedules, responsive cross flows actually
competing (and churned flows actually arriving/leaving) inside the
simulator, partial-lifetime handling in ``SimulationResult`` /
``monitor_report``, and the two reproducibility pins the ISSUE names:

* churn determinism — a churned grid produces byte-identical rows whether it
  runs serially or sharded over a process pool, and
* a differential pin — linear-chain routes plus the ``static`` workload
  reproduce the pre-workload trajectories exactly (atol=1e-12).
"""

import logging

import numpy as np
import pytest

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.metrics import summarize_result
from repro.cc.netsim import NetworkSimulator
from repro.harness.evaluate import EvaluationSettings, run_scheme_on_trace, scheme_factory
from repro.harness.parallel import ExperimentTask, ParallelRunner
from repro.topology import build_topology
from repro.traces.trace import BandwidthTrace
from repro.workload import (
    ArrivalSchedule,
    ResponsiveCrossFlow,
    WorkloadSpec,
    build_workload,
    canonical_workload,
    parse_workload,
    workload_specs,
)

RECORD_FIELDS = ("time", "sent", "acked", "lost", "rtt", "queuing_delay", "cwnd", "inflight")


def constant_trace(mbps=24.0, duration=60.0, name="const"):
    return BandwidthTrace.constant(mbps, duration=duration, name=name)


# ---------------------------------------------------------------------- #
# Spec grammar
# ---------------------------------------------------------------------- #
class TestParseWorkload:
    def test_kinds_parse(self):
        assert parse_workload("static") == WorkloadSpec(kind="static")
        assert parse_workload("responsive(cubic)") == WorkloadSpec(kind="responsive",
                                                                   scheme="cubic", count=1)
        assert parse_workload("responsive(bbr:3)") == WorkloadSpec(kind="responsive",
                                                                   scheme="bbr", count=3)
        assert parse_workload("poisson(0.25)") == WorkloadSpec(kind="poisson", rate=0.25)
        assert parse_workload("poisson(1:vegas)") == WorkloadSpec(kind="poisson", rate=1.0,
                                                                  scheme="vegas")
        assert parse_workload("step(2-6)") == WorkloadSpec(kind="step", windows=((2.0, 6.0),))
        assert parse_workload("step(2-6:4-)") == WorkloadSpec(
            kind="step", windows=((2.0, 6.0), (4.0, None)))

    def test_whitespace_tolerated(self):
        assert parse_workload(" responsive( cubic:2 ) ").count == 2

    def test_malformed_rejected(self):
        for bad in ("", "surge", "responsive", "responsive()", "responsive(quic)",
                    "responsive(cubic:0)", "responsive(cubic:two)", "poisson()",
                    "poisson(zero)", "poisson(0)", "poisson(-2)", "step()", "step(6-2)",
                    "step(2:6)", "step(-1-3)", "static(1)"):
            with pytest.raises(ValueError):
                parse_workload(bad)

    def test_canonical_forms(self):
        assert canonical_workload("responsive(cubic:1)") == "responsive(cubic)"
        assert canonical_workload("poisson(0.10:cubic)") == "poisson(0.1)"
        assert canonical_workload("poisson(0.5:bbr)") == "poisson(0.5:bbr)"
        assert canonical_workload("step(2.0-6.00)") == "step(2-6)"
        # Canonical forms are fixed points and comma-free (so axis lists split
        # cleanly on commas).
        for spec in workload_specs():
            assert canonical_workload(spec) == spec
            assert "," not in spec


# ---------------------------------------------------------------------- #
# Seeded mutation (the falsification search's workload axis)
# ---------------------------------------------------------------------- #
class TestMutateWorkload:
    def test_mutations_stay_inside_grammar_and_canonical(self):
        from repro.workload.spec import mutate_workload
        rng = np.random.default_rng(3)
        spec = "static"
        for _ in range(60):
            spec = mutate_workload(spec, rng)
            # Round trip: every mutated spec parses and is already canonical.
            assert parse_workload(spec).canonical() == spec

    def test_mutation_sequence_is_seed_deterministic(self):
        from repro.workload.spec import mutate_workload
        sequences = []
        for _ in range(2):
            rng = np.random.default_rng(17)
            spec, seen = "static", []
            for _ in range(25):
                spec = mutate_workload(spec, rng)
                seen.append(spec)
            sequences.append(seen)
        assert sequences[0] == sequences[1]
        # The walk actually moves (not a constant sequence).
        assert len(set(sequences[0])) > 1

    def test_every_kind_reachable_from_static(self):
        from repro.workload.spec import mutate_workload
        rng = np.random.default_rng(1)
        kinds = {parse_workload(mutate_workload("static", rng)).kind
                 for _ in range(40)}
        assert kinds == {"responsive", "poisson", "step"}

    def test_bounds_respected(self):
        from repro.workload.spec import mutate_workload
        rng = np.random.default_rng(23)
        spec = "responsive(cubic:4)"
        for _ in range(80):
            spec = mutate_workload(spec, rng)
            parsed = parse_workload(spec)
            if parsed.kind == "responsive":
                assert 1 <= parsed.count <= 4
            if parsed.kind == "poisson":
                assert 0.05 <= parsed.rate <= 2.0
            if parsed.kind == "step":
                assert 1 <= len(parsed.windows) <= 3
                for start, stop in parsed.windows:
                    assert start >= 0.0 and stop > start


# ---------------------------------------------------------------------- #
# Arrival schedules
# ---------------------------------------------------------------------- #
class TestArrivalSchedule:
    def test_always_and_scripted(self):
        assert [w.start for w in ArrivalSchedule.always(3)] == [0.0, 0.0, 0.0]
        scripted = ArrivalSchedule.scripted([(1.0, 3.0), (2.0, None)])
        assert [(w.start, w.stop) for w in scripted] == [(1.0, 3.0), (2.0, None)]
        with pytest.raises(ValueError):
            ArrivalSchedule.scripted([(3.0, 1.0)])

    def test_poisson_deterministic_per_seed(self):
        a = ArrivalSchedule.poisson(rate=1.0, duration=20.0, seed=9)
        b = ArrivalSchedule.poisson(rate=1.0, duration=20.0, seed=9)
        c = ArrivalSchedule.poisson(rate=1.0, duration=20.0, seed=10)
        assert a.windows == b.windows
        assert a.windows != c.windows

    def test_poisson_windows_inside_run(self):
        schedule = ArrivalSchedule.poisson(rate=2.0, duration=10.0, seed=4)
        assert len(schedule) > 0
        for window in schedule:
            assert 0.0 <= window.start < 10.0
            if window.stop is not None:
                assert window.stop > window.start

    def test_poisson_flow_cap_warns_instead_of_truncating_silently(self, caplog):
        # The MAX_FLOWS guard still bites, but it must name the requested vs
        # generated flow counts instead of silently dropping arrivals — now a
        # structured warning on the repro.workload logger.
        with caplog.at_level(logging.WARNING, logger="repro.workload"):
            schedule = ArrivalSchedule.poisson(rate=1e6, duration=10.0, seed=1)
        assert len(schedule) == 64
        messages = [r.message for r in caplog.records
                    if r.name == "repro.workload"]
        assert len(messages) == 1
        assert "poisson_schedule_truncated" in messages[0]
        assert "max_flows=64" in messages[0]
        assert "requested=10000000" in messages[0]
        assert "generated=64" in messages[0]

    def test_poisson_below_cap_does_not_warn(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.workload"):
            schedule = ArrivalSchedule.poisson(rate=1.0, duration=10.0, seed=1)
        assert 0 < len(schedule) < 64
        assert not [r for r in caplog.records if r.name == "repro.workload"]

    def test_poisson_windows_unchanged_by_cap_detection(self, caplog):
        # The truncation probe draws one extra arrival *after* the cap is
        # reached; the windows returned for the capped prefix must be exactly
        # the windows an uncapped schedule starts with.
        with caplog.at_level(logging.WARNING, logger="repro.workload"):
            capped = ArrivalSchedule.poisson(rate=30.0, duration=10.0, seed=3, max_flows=8)
        assert any("poisson_schedule_truncated" in r.message
                   for r in caplog.records if r.name == "repro.workload")
        uncapped = ArrivalSchedule.poisson(rate=30.0, duration=10.0, seed=3, max_flows=1000)
        assert len(uncapped) > 8
        assert capped.windows == uncapped.windows[:8]


# ---------------------------------------------------------------------- #
# build_workload expansion
# ---------------------------------------------------------------------- #
class TestBuildWorkload:
    def test_static_builds_nothing(self):
        assert build_workload("static", duration=10.0, seed=1) == []

    def test_responsive_ids_and_lifetimes(self):
        flows = build_workload("responsive(vegas:2)", duration=10.0, seed=1)
        assert [f.flow_id for f in flows] == [1, 2]
        assert all(f.scheme == "vegas" for f in flows)
        assert all(f.start_time == 0.0 and f.stop_time is None for f in flows)

    def test_poisson_seed_derives_from_cell_coordinates(self):
        kwargs = dict(duration=20.0, seed=3, trace_name="t", topology="fan_in(3)")
        same = [build_workload("poisson(1.0)", **kwargs) for _ in range(2)]
        assert same[0] == same[1]
        other_cell = build_workload("poisson(1.0)", duration=20.0, seed=3,
                                    trace_name="t", topology="chain(2)")
        assert other_cell != same[0]

    def test_cross_flow_validation(self):
        with pytest.raises(ValueError):
            ResponsiveCrossFlow(scheme="cubic", flow_id=0)
        with pytest.raises(ValueError):
            ResponsiveCrossFlow(scheme="quic", flow_id=1)
        with pytest.raises(ValueError):
            ResponsiveCrossFlow(scheme="cubic", flow_id=1,
                                start_time=4.0, stop_time=2.0)


# ---------------------------------------------------------------------- #
# Responsive competition and churn inside the simulator
# ---------------------------------------------------------------------- #
class TestResponsiveCompetition:
    def run_flow0(self, workload, topology="single_bottleneck", duration=8.0, seed=5):
        settings = EvaluationSettings(duration=duration, buffer_bdp=1.0,
                                      topology=topology, workload=workload, seed=seed)
        return run_scheme_on_trace(scheme_factory("cubic"),
                                   constant_trace(name="const-24"), settings,
                                   scheme_name="cubic")

    def test_responsive_competitor_takes_capacity(self):
        quiet = self.run_flow0("static")
        contended = self.run_flow0("responsive(cubic:2)")
        assert contended.summary.utilization < quiet.summary.utilization * 0.9
        # The background flows are real closed-loop flows with stats.
        assert set(contended.simulation.flow_stats) == {0, 1, 2}
        for fid in (1, 2):
            assert contended.simulation.stats_for(fid).acked.sum() > 0.0

    def test_fan_in_incast_spreads_flows_over_leaves(self):
        result = self.run_flow0("responsive(cubic:2)", topology="fan_in(3)")
        sim_flows = result.simulation.flow_stats
        assert set(sim_flows) == {0, 1, 2}
        # Every flow pushed data through its own leaf into the shared root.
        for fid in sim_flows:
            assert sim_flows[fid].acked.sum() > 0.0

    def test_churned_flows_start_and_stop_mid_run(self):
        result = self.run_flow0("step(2-5)", duration=8.0)
        lifetimes = result.simulation.lifetimes
        assert lifetimes[1] == (2.0, 5.0)
        stats = result.simulation.stats_for(1)
        # Silent before arrival, active inside the window, silent after
        # departure (plus the ack tail draining one RTT past the stop).
        # Tick times accumulate float error (0.01 * 500 != 5.0 exactly), so
        # the last active send can land in the tick ending one dt past the
        # stop; allow that one tick of slack on the boundaries.
        dt = result.simulation.dt
        assert stats.sent[stats.times <= 2.0 + dt / 2].sum() == 0.0
        window = (stats.times > 2.0 + dt / 2) & (stats.times <= 5.0 + 3 * dt / 2)
        assert stats.sent[window].sum() > 0.0
        assert stats.sent[stats.times > 5.0 + 3 * dt / 2].sum() == 0.0

    def test_partial_lifetime_summary_scores_active_window_only(self):
        result = self.run_flow0("step(3-6)", duration=9.0)
        summary = summarize_result(result.simulation, flow_id=1, skip_seconds=0.5)
        # Scoring the 3s active window against the whole 9s run would dilute
        # throughput by ~3x; the windowed summary must not.
        from repro.traces.trace import pps_to_mbps

        stats = result.simulation.stats_for(1)
        window = (stats.times > 3.5) & (stats.times <= 6.0)
        window_rate = stats.acked[window].sum() / (window.sum() * result.simulation.dt)
        assert summary.throughput_mbps == pytest.approx(pps_to_mbps(window_rate), rel=0.05)
        assert summary.total_acked > 0.0

    def test_monitor_report_interval_starts_at_flow_start(self):
        topo = build_topology("single_bottleneck", constant_trace(), min_rtt=0.04, seed=3)
        late = Flow(1, CubicController(), start_time=1.0)
        sim = NetworkSimulator(topo, [Flow(0, CubicController()), late])
        for _ in range(150):  # 1.5 s
            sim.tick()
        report = sim.monitor_report(1)
        assert report.interval == pytest.approx(0.5, abs=0.02)


# ---------------------------------------------------------------------- #
# Determinism: churned grids shard identically (ISSUE satellite)
# ---------------------------------------------------------------------- #
class TestChurnDeterminism:
    def test_serial_and_sharded_rows_identical(self):
        trace = constant_trace(name="const-24")
        tasks = []
        for workload in ("poisson(0.6)", "responsive(cubic)", "step(1-3)"):
            for topology in ("fan_in(2)", "shared_segment"):
                settings = EvaluationSettings(duration=3.0, buffer_bdp=1.0,
                                              topology=topology, workload=workload,
                                              seed=7)
                tasks.append(ExperimentTask(scheme="cubic", trace=trace,
                                            settings=settings))
        serial = ParallelRunner(1).run(tasks)
        sharded = ParallelRunner(2).run(tasks)
        assert serial.rows == sharded.rows
        assert all(row["workload"] in ("poisson(0.6)", "responsive(cubic)", "step(1-3)")
                   for row in serial.rows)


# ---------------------------------------------------------------------- #
# Differential pin: static workload == pre-workload trajectories
# ---------------------------------------------------------------------- #
class TestStaticWorkloadDifferential:
    def collect(self, sim, n_ticks):
        rows = []
        for _ in range(n_ticks):
            record = sim.tick()[0]
            rows.append([getattr(record, name) for name in RECORD_FIELDS])
        return np.asarray(rows, dtype=np.float64)

    @pytest.mark.parametrize("topology", ["single_bottleneck", "chain(3)"])
    def test_static_workload_is_a_byte_exact_noop(self, topology):
        """Linear-chain routes + the static workload reproduce the direct
        (pre-workload) simulator trajectory exactly (atol=1e-12)."""
        trace = constant_trace(name="const-24")
        settings = EvaluationSettings(duration=6.0, buffer_bdp=1.0,
                                      topology=topology, workload="static", seed=11)
        through_workload = run_scheme_on_trace(
            scheme_factory("cubic"), trace, settings, scheme_name="cubic")

        direct_sim = NetworkSimulator(
            build_topology(topology, trace, min_rtt=settings.min_rtt,
                           buffer_bdp=settings.buffer_bdp, seed=settings.seed),
            [Flow(0, CubicController())], dt=settings.dt)
        direct = self.collect(direct_sim, 600)

        stats = through_workload.simulation.stats_for(0)
        workload_rows = np.column_stack(
            [getattr(stats, "times" if name == "time" else name) for name in RECORD_FIELDS])
        np.testing.assert_allclose(direct, workload_rows, rtol=0.0, atol=1e-12,
                                   err_msg=f"static workload drifted on {topology}")
