"""Tests for quantitative certificates and the Eq. 6 feedback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract.interval import Interval
from repro.core.qc import ComponentCertificate, QuantitativeCertificate, interval_feedback


class TestIntervalFeedback:
    def test_fully_inside_allowed(self):
        assert interval_feedback(Interval(1.0, 2.0), Interval(0.0, 10.0)) == pytest.approx(1.0)

    def test_fully_inside_forbidden(self):
        assert interval_feedback(Interval(-5.0, -1.0), Interval(0.0, 10.0)) == pytest.approx(0.0)

    def test_partial_overlap_fraction(self):
        assert interval_feedback(Interval(-1.0, 1.0), Interval(0.0, 10.0)) == pytest.approx(0.5)

    def test_point_output(self):
        assert interval_feedback(Interval.point(1.0), Interval(0.0, 2.0)) == pytest.approx(1.0)
        assert interval_feedback(Interval.point(-1.0), Interval(0.0, 2.0)) == pytest.approx(0.0)


def make_component(index, lo, hi, allowed):
    interval = Interval(lo, hi)
    return ComponentCertificate(
        index=index,
        input_lo=np.zeros(2),
        input_hi=np.ones(2),
        output_lo=lo,
        output_hi=hi,
        satisfied=allowed.contains_interval(interval),
        feedback=interval_feedback(interval, allowed),
    )


class TestQuantitativeCertificate:
    def test_empty_certificate_is_trivially_satisfied(self):
        qc = QuantitativeCertificate("P1", 0.0, 100.0)
        assert qc.feedback == pytest.approx(1.0)
        assert qc.proof
        assert qc.satisfied_fraction == pytest.approx(1.0)

    def test_mixed_components(self):
        allowed = Interval(0.0, 100.0)
        qc = QuantitativeCertificate("P1", 0.0, 100.0, components=[
            make_component(0, 1.0, 2.0, allowed),      # satisfied, feedback 1
            make_component(1, -2.0, -1.0, allowed),    # violated, feedback 0
            make_component(2, -1.0, 1.0, allowed),     # partial, feedback 0.5
        ])
        assert qc.n_components == 3
        assert qc.feedback == pytest.approx(0.5)
        assert qc.satisfied_fraction == pytest.approx(1.0 / 3.0)
        assert not qc.proof

    def test_proof_when_all_satisfied(self):
        allowed = Interval(0.0, 100.0)
        qc = QuantitativeCertificate("P1", 0.0, 100.0, components=[
            make_component(i, float(i), float(i) + 0.5, allowed) for i in range(5)
        ])
        assert qc.proof
        assert qc.feedback == pytest.approx(1.0)

    def test_output_bounds_matrix(self):
        allowed = Interval(0.0, 100.0)
        qc = QuantitativeCertificate("P1", 0.0, 100.0, components=[
            make_component(0, 1.0, 2.0, allowed),
            make_component(1, 3.0, 4.0, allowed),
        ])
        bounds = qc.output_bounds()
        assert bounds.shape == (2, 2)
        assert bounds[1, 0] == pytest.approx(3.0)

    def test_summary_keys(self):
        qc = QuantitativeCertificate("P5", -0.01, 0.01)
        summary = qc.summary()
        assert summary["property"] == "P5"
        assert set(summary) >= {"feedback", "satisfied_fraction", "proof", "n_components", "applicable"}

    def test_component_output_interval(self):
        component = make_component(0, -1.0, 2.0, Interval(0.0, 5.0))
        assert component.output_interval.lo == pytest.approx(-1.0)


@given(st.floats(-10, 10), st.floats(0, 5), st.floats(-10, 10), st.floats(0, 5))
@settings(max_examples=60, deadline=None)
def test_feedback_always_in_unit_interval(a, wa, b, wb):
    output = Interval(a, a + wa)
    allowed = Interval(b, b + wb)
    value = interval_feedback(output, allowed)
    assert 0.0 <= value <= 1.0


@given(st.floats(-5, 5), st.floats(0.01, 5))
@settings(max_examples=40, deadline=None)
def test_feedback_one_iff_contained(lo, width):
    output = Interval(lo, lo + width)
    allowed = Interval(-100.0, 100.0)
    assert interval_feedback(output, allowed) == pytest.approx(1.0)
