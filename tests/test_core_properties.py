"""Tests for the property language and the P1–P5 definitions."""

import numpy as np
import pytest

from repro.core.properties import (
    ACTION_BOUND,
    ActionKind,
    PropertySet,
    PropertySpec,
    all_properties,
    deep_buffer_properties,
    property_p1,
    property_p2,
    property_p3,
    property_p4_case_i,
    property_p4_case_ii,
    property_p5,
    robustness_properties,
    shallow_buffer_properties,
)
from repro.orca.observations import ObservationBuilder, ObservationConfig


@pytest.fixture
def observer():
    return ObservationBuilder(ObservationConfig())


class TestSpecValidation:
    def test_delta_property_needs_direction(self):
        with pytest.raises(ValueError):
            PropertySpec(name="X", description="", kind=ActionKind.DELTA_CWND)

    def test_robustness_needs_epsilon_and_mu(self):
        with pytest.raises(ValueError):
            PropertySpec(name="X", description="", kind=ActionKind.CWND_CHANGE_FRACTION,
                         epsilon=0.0, noise_mu=0.05)
        with pytest.raises(ValueError):
            PropertySpec(name="X", description="", kind=ActionKind.CWND_CHANGE_FRACTION,
                         epsilon=0.01, noise_mu=0.0)

    def test_invalid_dcwnd_sign(self):
        with pytest.raises(ValueError):
            PropertySpec(name="X", description="", kind=ActionKind.DELTA_CWND,
                         allowed_direction=1, dcwnd_sign=2)

    def test_invalid_range_order(self):
        with pytest.raises(ValueError):
            PropertySpec(name="X", description="", kind=ActionKind.DELTA_CWND,
                         allowed_direction=1, delay_range=(0.5, 0.1))

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            property_p1().with_weight(0.0)


class TestTableTwoDefinitions:
    def test_p1_allows_non_decrease_under_good_shallow_conditions(self):
        p1 = property_p1(q_min_delay=0.01)
        assert p1.delay_range == (0.0, 0.01)
        assert p1.loss_range == (0.0, 0.0)
        assert p1.dcwnd_sign == -1
        assert p1.allowed_direction == +1

    def test_p2_forbids_increase_under_loss(self):
        p2 = property_p2(q_min_delay=0.01, p_loss=0.75)
        assert p2.loss_range == (0.75, 1.0)
        assert p2.allowed_direction == -1
        assert p2.dcwnd_sign == +1

    def test_p3_uses_deep_buffer_delay_threshold(self):
        assert property_p3(q_delay=0.25).delay_range == (0.0, 0.25)

    def test_p4_cases_are_mirror_images(self):
        case_i = property_p4_case_i(p_delay=0.75)
        case_ii = property_p4_case_ii(p_delay=0.75)
        assert case_i.delay_range == case_ii.delay_range == (0.75, 1.0)
        assert case_i.allowed_direction == -1 and case_i.dcwnd_sign == +1
        assert case_ii.allowed_direction == +1 and case_ii.dcwnd_sign == -1

    def test_p5_parameters(self):
        p5 = property_p5(mu=0.05, epsilon=0.01)
        assert p5.kind is ActionKind.CWND_CHANGE_FRACTION
        assert p5.noise_mu == pytest.approx(0.05)
        assert p5.epsilon == pytest.approx(0.01)


class TestAllowedRegions:
    def test_non_decrease_region(self):
        allowed = property_p1().allowed_interval()
        assert allowed.contains(0.0)
        assert allowed.contains(ACTION_BOUND / 2)
        assert not allowed.contains(-1.0)

    def test_non_increase_region(self):
        allowed = property_p2().allowed_interval()
        assert allowed.contains(-5.0)
        assert not allowed.contains(1.0)

    def test_robustness_region_symmetric(self):
        allowed = property_p5(epsilon=0.02).allowed_interval()
        assert allowed.contains(0.015)
        assert allowed.contains(-0.015)
        assert not allowed.contains(0.03)

    def test_checked_action_concrete(self):
        p1 = property_p1()
        assert p1.checked_action_concrete(cwnd=12.0, cwnd_prev=10.0, cwnd_reference=10.0) == pytest.approx(2.0)
        p5 = property_p5()
        assert p5.checked_action_concrete(cwnd=11.0, cwnd_prev=0.0, cwnd_reference=10.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            p5.checked_action_concrete(cwnd=11.0, cwnd_prev=0.0, cwnd_reference=0.0)

    def test_satisfied_concretely(self):
        p1 = property_p1()
        assert p1.satisfied_concretely(cwnd=12.0, cwnd_prev=10.0, cwnd_reference=10.0)
        assert not p1.satisfied_concretely(cwnd=8.0, cwnd_prev=10.0, cwnd_reference=10.0)


class TestInputRegions:
    def test_p1_region_abstracts_delay_loss_dcwnd(self, observer):
        p1 = property_p1()
        state = np.full(observer.state_dim, 0.5)
        box = p1.input_region(state, observer)
        for idx in observer.feature_indices("delay"):
            assert box.lo[idx] == pytest.approx(0.0)
            assert box.hi[idx] == pytest.approx(0.01)
        for idx in observer.feature_indices("loss"):
            assert box.lo[idx] == pytest.approx(0.0)
            assert box.hi[idx] == pytest.approx(0.0)
        for idx in observer.feature_indices("dcwnd"):
            assert box.lo[idx] == pytest.approx(-1.0)
            assert box.hi[idx] == pytest.approx(0.0)
        # Non-precondition dimensions keep their observed values.
        for idx in observer.feature_indices("throughput"):
            assert box.lo[idx] == pytest.approx(0.5)
            assert box.hi[idx] == pytest.approx(0.5)

    def test_p5_region_scales_noise_features(self, observer):
        p5 = property_p5(mu=0.1)
        state = np.full(observer.state_dim, 0.5)
        box = p5.input_region(state, observer)
        for idx in observer.feature_indices("delay"):
            assert box.lo[idx] == pytest.approx(0.45)
            assert box.hi[idx] == pytest.approx(0.55)

    def test_region_rejects_wrong_state_dim(self, observer):
        with pytest.raises(ValueError):
            property_p1().input_region(np.zeros(3), observer)

    def test_partition_dims_point_at_delay(self, observer):
        dims = property_p1().partition_dims(observer)
        assert dims == observer.feature_indices("delay")

    def test_concrete_precondition_uses_dcwnd_history(self, observer):
        from repro.cc.netsim import MonitorReport

        def report(cwnd):
            return MonitorReport(throughput_pps=100.0, loss_rate=0.0, avg_queuing_delay=0.0,
                                 n_acks=10.0, interval=0.2, srtt=0.05, min_rtt=0.05,
                                 avg_rtt=0.05, cwnd=cwnd, sent_pps=100.0)

        for cwnd in (10.0, 9.0, 8.0, 7.0):
            observer.observe(report(cwnd))
        assert property_p1().concrete_precondition_holds(observer)       # decreasing history
        assert not property_p2().concrete_precondition_holds(observer)   # needs increasing
        assert property_p5().concrete_precondition_holds(observer)       # always applies


class TestPropertySets:
    def test_shallow_set(self):
        props = shallow_buffer_properties()
        assert {p.name for p in props} == {"P1", "P2"}

    def test_deep_set(self):
        props = deep_buffer_properties()
        assert {p.name for p in props} == {"P3", "P4i", "P4ii"}

    def test_robustness_set(self):
        assert {p.name for p in robustness_properties()} == {"P5"}

    def test_all_properties(self):
        assert len(all_properties()) == 6

    def test_by_name_and_missing(self):
        props = shallow_buffer_properties()
        assert props.by_name("P1").name == "P1"
        with pytest.raises(KeyError):
            props.by_name("P9")

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            PropertySet("empty", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PropertySet("dup", [property_p1(), property_p1()])

    def test_reweighting(self):
        props = deep_buffer_properties().reweighted({"P4i": 2.0})
        assert props.by_name("P4i").weight == pytest.approx(2.0)
        assert props.by_name("P3").weight == pytest.approx(1.0)
