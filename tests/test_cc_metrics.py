"""Tests for the performance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.flow import TickRecord
from repro.cc.metrics import (
    delay_percentile,
    jain_fairness_index,
    summarize_flow,
    throughput_ratio,
    utilization,
)
from repro.cc.netsim import FlowStats
from repro.traces.trace import mbps_to_pps, pps_to_mbps


def make_stats(acked, delays=None, lost=None, rtts=None, dt=0.01):
    acked = np.asarray(acked, dtype=float)
    n = acked.size
    delays = np.asarray(delays, dtype=float) if delays is not None else np.zeros(n)
    lost = np.asarray(lost, dtype=float) if lost is not None else np.zeros(n)
    rtts = np.asarray(rtts, dtype=float) if rtts is not None else delays + 0.05
    stats = FlowStats(0)
    for i in range(n):
        stats.append(TickRecord(time=(i + 1) * dt, sent=acked[i] + lost[i], acked=acked[i],
                                lost=lost[i], rtt=rtts[i], queuing_delay=delays[i],
                                cwnd=10.0, inflight=5.0))
    return stats


class TestSummaries:
    def test_throughput_matches_acked_rate(self):
        pps = mbps_to_pps(12.0)
        acked = np.full(1000, pps * 0.01)
        stats = make_stats(acked)
        capacity = np.full(1000, 12.0)
        summary = summarize_flow(stats, capacity, dt=0.01, skip_seconds=0.0)
        assert summary.throughput_mbps == pytest.approx(12.0, rel=1e-6)
        assert summary.utilization == pytest.approx(1.0, rel=1e-6)

    def test_loss_rate(self):
        stats = make_stats(np.full(100, 9.0), lost=np.full(100, 1.0))
        summary = summarize_flow(stats, np.full(100, 12.0), dt=0.01, skip_seconds=0.0)
        assert summary.loss_rate == pytest.approx(0.1)

    def test_delay_statistics_weighted_by_acks(self):
        acked = np.array([1.0, 1.0, 8.0])
        delays = np.array([0.1, 0.1, 0.01])
        stats = make_stats(acked, delays=delays)
        summary = summarize_flow(stats, np.full(3, 12.0), dt=0.01, skip_seconds=0.0)
        expected_avg = np.average(delays, weights=acked) * 1000.0
        assert summary.avg_queuing_delay_ms == pytest.approx(expected_avg)

    def test_p95_exceeds_average_for_skewed_delays(self):
        acked = np.ones(100)
        delays = np.concatenate([np.full(90, 0.01), np.full(10, 0.2)])
        stats = make_stats(acked, delays=delays)
        summary = summarize_flow(stats, np.full(100, 12.0), dt=0.01, skip_seconds=0.0)
        assert summary.p95_queuing_delay_ms > summary.avg_queuing_delay_ms

    def test_skip_seconds_excludes_rampup(self):
        acked = np.concatenate([np.zeros(100), np.full(100, 10.0)])
        stats = make_stats(acked)
        capacity = np.full(200, pps_to_mbps(10.0 / 0.01))
        with_skip = summarize_flow(stats, capacity, dt=0.01, skip_seconds=1.0)
        without = summarize_flow(stats, capacity, dt=0.01, skip_seconds=0.0)
        assert with_skip.utilization > without.utilization

    def test_empty_ack_stream(self):
        stats = make_stats(np.zeros(50))
        summary = summarize_flow(stats, np.full(50, 12.0), dt=0.01, skip_seconds=0.0)
        assert summary.throughput_mbps == 0.0
        assert summary.avg_queuing_delay_ms == 0.0

    def test_delay_percentile_helper(self):
        stats = make_stats(np.ones(100), delays=np.linspace(0.0, 0.1, 100))
        p50 = delay_percentile(stats, 50.0)
        p95 = delay_percentile(stats, 95.0)
        assert p95 > p50

    def test_zero_capacity_gives_zero_utilization(self):
        stats = make_stats(np.ones(10))
        assert utilization(stats, np.zeros(10), dt=0.01, skip_seconds=0.0) == 0.0


class TestFairness:
    def test_jain_perfect_fairness(self):
        assert jain_fairness_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)

    def test_jain_maximally_unfair(self):
        assert jain_fairness_index([10.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)

    def test_jain_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])

    def test_jain_all_zero_defined_as_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == pytest.approx(1.0)

    def test_throughput_ratio(self):
        assert throughput_ratio(10.0, [5.0, 15.0]) == pytest.approx(1.0)
        assert throughput_ratio(20.0, [10.0]) == pytest.approx(2.0)

    def test_throughput_ratio_empty_competitors(self):
        with pytest.raises(ValueError):
            throughput_ratio(1.0, [])


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_jain_index_bounds(throughputs):
    index = jain_fairness_index(throughputs)
    assert 1.0 / len(throughputs) - 1e-9 <= index <= 1.0 + 1e-9
