"""Tests for the evaluation harness: scheme runs, summaries, QC_sat."""

import pytest

from repro.harness.evaluate import (
    CLASSICAL_SCHEMES,
    EvaluationSettings,
    certificates_for_decisions,
    evaluate_qcsat,
    run_scheme_on_trace,
    run_schemes,
    scheme_factory,
)
from repro.traces.synthetic import make_synthetic_trace
from repro.traces.trace import BandwidthTrace


@pytest.fixture
def settings():
    return EvaluationSettings(duration=4.0, buffer_bdp=1.0, seed=1)


@pytest.fixture
def trace():
    return BandwidthTrace.constant(24.0, duration=30.0, name="const-24")


class TestSettings:
    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            EvaluationSettings(duration=0.0)

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            EvaluationSettings(buffer_bdp=0.0)


class TestSchemeFactory:
    @pytest.mark.parametrize("name", CLASSICAL_SCHEMES)
    def test_classical_factories(self, name):
        controller = scheme_factory(name)()
        assert controller.cwnd >= 2.0

    def test_learned_scheme_requires_model(self):
        with pytest.raises(ValueError):
            scheme_factory("canopy")

    def test_factories_produce_fresh_instances(self):
        factory = scheme_factory("cubic")
        assert factory() is not factory()


class TestRunScheme:
    def test_cubic_run_summary(self, settings, trace):
        result = run_scheme_on_trace(scheme_factory("cubic"), trace, settings, scheme_name="cubic")
        assert result.scheme == "cubic"
        assert result.trace == "const-24"
        assert 0.0 < result.summary.utilization <= 1.5
        assert result.summary.avg_queuing_delay_ms >= 0.0
        assert result.decisions == []

    def test_run_schemes_cartesian(self, settings, trace):
        schemes = {"cubic": scheme_factory("cubic"), "vegas": scheme_factory("vegas")}
        traces = [trace, make_synthetic_trace("step-12-48")]
        results = run_schemes(schemes, traces, settings)
        assert len(results) == 4
        assert {r.scheme for r in results} == {"cubic", "vegas"}

    def test_learned_run_collects_decisions(self, settings, trace, quick_model):
        factory = scheme_factory("canopy", model=quick_model, seed=1)
        result = run_scheme_on_trace(factory, trace, settings, scheme_name="canopy")
        assert len(result.decisions) > 5
        assert result.as_row()["scheme"] == "canopy"

    def test_random_loss_setting_increases_losses(self, trace):
        clean = run_scheme_on_trace(scheme_factory("cubic"), trace,
                                    EvaluationSettings(duration=4.0, random_loss_rate=0.0, seed=1))
        lossy = run_scheme_on_trace(scheme_factory("cubic"), trace,
                                    EvaluationSettings(duration=4.0, random_loss_rate=0.01, seed=1))
        assert lossy.summary.loss_rate >= clean.summary.loss_rate


class TestQCSat:
    def test_certificates_for_decisions_chain_prev_cwnd(self, settings, trace, quick_model):
        factory = scheme_factory("canopy", model=quick_model, seed=1)
        run = run_scheme_on_trace(factory, trace, settings, scheme_name="canopy")
        verifier = quick_model.make_verifier(n_components=4)
        certificates = certificates_for_decisions(verifier, quick_model.properties,
                                                  run.decisions[:5], n_components=4)
        assert len(certificates) == 5
        for per_property in certificates:
            assert set(per_property) == {p.name for p in quick_model.properties}

    def test_evaluate_qcsat_bounds(self, settings, trace, quick_model):
        result = evaluate_qcsat(quick_model, trace, settings, n_components=6)
        assert 0.0 <= result.mean <= 1.0
        assert result.std >= 0.0
        assert result.n_decisions > 0
        assert len(result.per_decision) > 0
        assert result.property_names == ["P1", "P2"]

    def test_evaluate_qcsat_with_explicit_properties(self, settings, trace, quick_orca_model):
        from repro.core.properties import robustness_properties

        result = evaluate_qcsat(quick_orca_model, trace, settings,
                                properties=robustness_properties(), n_components=4,
                                scheme_name="orca")
        assert result.scheme == "orca"
        assert result.property_names == ["P5"]
        assert 0.0 <= result.mean <= 1.0
