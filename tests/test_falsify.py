"""Tests for the falsification subsystem: objectives, search, shrink, promote.

Covers the objective score functions (including the conservation balance
math), the task replay codec, template reshaping per objective, seeded
mutations, the determinism contract the ISSUE pins (same campaign seed ⇒
byte-identical candidate sequence and shrink trace; serial == ``--jobs 2``;
fully-cached reruns identical), greedy shrinking, idempotent promotion, the
``--check`` regression gate (green and both red modes), campaign reporting,
the CLI front door, and an in-process replay of the committed golden
counterexample store.
"""

import json
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.falsify.objective import OBJECTIVES, objective_names, resolve_objective
from repro.falsify.promote import (
    check_counterexamples,
    counterexample_id,
    load_counterexamples,
    promote_counterexample,
)
from repro.falsify.report import format_report, read_campaign, report_stats
from repro.falsify.scenario import (
    MUTATION_AXES,
    mutate_task,
    prepare_template,
    task_from_json,
    task_to_json,
    topology_pool,
)
from repro.falsify.search import (
    STRATEGIES,
    CampaignConfig,
    resolve_strategy,
    run_campaign,
)
from repro.falsify.shrink import shrink_counterexample, shrink_reductions
from repro.harness.evaluate import EvaluationSettings
from repro.harness.parallel import ExperimentTask, run_task
from repro.harness.spec import resolve_trace
from repro.harness.store import RunStore, canonical_json
from repro.topology.families import parse_topology
from repro.workload.spec import parse_workload

LOSS_BURST = resolve_objective("loss_burst", threshold=0.001)


def classical_task(workload="static", topology="single_bottleneck",
                   duration=3.0, seed=1, trace="step-12-48", **task_kwargs):
    settings = EvaluationSettings(duration=duration, buffer_bdp=0.25,
                                  topology=topology, workload=workload, seed=seed)
    return ExperimentTask(scheme="cubic", trace=resolve_trace(trace),
                          settings=settings, **task_kwargs)


#: The deterministic toy campaign every search test replays: classical cubic
#: at a shallow buffer, where mutated cross-traffic workloads exceed the
#: loss threshold but the static template does not (same cell family as the
#: committed golden store and the CI falsify-smoke job).
def toy_campaign_config(**overrides):
    defaults = dict(
        experiment="workload_stress",
        objective=LOSS_BURST,
        budget=6,
        strategy="random",
        campaign_seed=7,
        jobs=1,
        overrides={"schemes": "cubic", "duration": "3", "buffer_bdp": "0.25"},
        max_counterexamples=2,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


# ---------------------------------------------------------------------- #
# Objectives
# ---------------------------------------------------------------------- #
class TestObjectives:
    def test_registry_names_and_resolution(self):
        assert objective_names() == sorted(OBJECTIVES)
        for name in objective_names():
            assert resolve_objective(name).name == name

    def test_unknown_objective_lists_known(self):
        with pytest.raises(ValueError, match="loss_burst"):
            resolve_objective("not-an-objective")

    def test_threshold_override(self):
        objective = resolve_objective("loss_burst", threshold=0.25)
        assert objective.threshold == 0.25
        assert OBJECTIVES["loss_burst"].threshold == 0.05  # registry untouched

    def test_violation_is_strictly_above_threshold(self):
        objective = resolve_objective("loss_burst", threshold=0.01)
        assert not objective.violated({"loss_rate": 0.01})
        assert objective.violated({"loss_rate": 0.0100001})

    def test_qc_violation_score(self):
        objective = OBJECTIVES["qc_violation"]
        assert objective({"qcsat": 0.9}) == pytest.approx(0.1)
        assert objective({}) == pytest.approx(0.0)  # missing qcsat defaults safe
        assert objective.violated({"qcsat": 0.9})
        assert not objective.violated({"qcsat": 0.96})

    def test_qc_gap_score(self):
        objective = OBJECTIVES["qc_gap"]
        # Certified confident while dropping 5% of packets: the bad cell.
        assert objective({"qcsat": 0.98, "loss_rate": 0.05}) == pytest.approx(0.98)
        # Certified confident with a clean run: no gap.
        assert objective({"qcsat": 0.98, "loss_rate": 0.0}) == pytest.approx(-0.02)
        assert not objective.violated({"qcsat": 0.98, "loss_rate": 0.0})

    def test_fallback_storm_prefers_telemetry_summary(self):
        objective = OBJECTIVES["fallback_storm"]
        assert objective({"tele_fallback_longest_s": 2.5,
                          "fallback_fraction": 0.1}) == pytest.approx(2.5)
        assert objective({"fallback_fraction": 0.1}) == pytest.approx(0.1)

    def test_conservation_balance_math(self):
        objective = OBJECTIVES["conservation"]
        balanced = {"kind": "conservation", "sent": 100.0, "acked": 60.0,
                    "lost": 10.0, "hops": {"hop0": 20.0, "hop1": 5.0},
                    "transit": 3.0, "pending": 2.0}
        leaky = dict(balanced, acked=59.0)  # one packet vanished
        assert objective({"telemetry_events": [balanced]}) == pytest.approx(0.0)
        assert objective({"telemetry_events": [balanced, leaky]}) == pytest.approx(1.0)
        assert objective({}) == 0.0  # untraced rows score clean

    def test_requires_declarations(self):
        assert OBJECTIVES["qc_gap"].requires == {"certify"}
        assert OBJECTIVES["fallback_storm"].requires == {"monitor", "telemetry"}
        assert OBJECTIVES["conservation"].requires == {"telemetry"}
        assert OBJECTIVES["loss_burst"].requires == frozenset()


# ---------------------------------------------------------------------- #
# Replay codec + template preparation
# ---------------------------------------------------------------------- #
class TestTaskCodec:
    def test_round_trip_preserves_cell_key(self):
        task = classical_task(workload="poisson(0.25:vegas)", topology="fan_in(3)",
                              seed=42, tags={"workload": "poisson(0.25:vegas)"})
        rebuilt = task_from_json(task_to_json(task))
        assert rebuilt.cell_key() == task.cell_key()
        assert rebuilt.settings == task.settings
        assert rebuilt.trace.name == task.trace.name

    def test_round_trip_survives_json_serialization(self):
        task = classical_task(monitor_threshold=None)
        payload = json.loads(json.dumps(task_to_json(task), sort_keys=True))
        assert task_from_json(payload).cell_key() == task.cell_key()

    def test_unknown_field_rejected(self):
        payload = task_to_json(classical_task())
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            task_from_json(payload)


class TestPrepareTemplate:
    def test_scheme_agnostic_objective_only_clears_tags(self):
        task = classical_task(tags={"workload": "static"})
        template = prepare_template(task, OBJECTIVES["loss_burst"])
        assert template.tags == {}
        assert template == replace(task, tags={})

    def test_certify_objective_requires_learned_scheme(self):
        with pytest.raises(ValueError, match="learned scheme"):
            prepare_template(classical_task(), OBJECTIVES["qc_gap"])

    def test_monitor_objective_reshapes_learned_cell(self):
        learned = ExperimentTask(scheme="canopy-shallow",
                                 trace=resolve_trace("step-12-48"),
                                 settings=EvaluationSettings(duration=3.0),
                                 model_kind="canopy-shallow", training_steps=30,
                                 certify=True, property_family="shallow")
        template = prepare_template(learned, OBJECTIVES["fallback_storm"],
                                    monitor_threshold=0.7, telemetry="on(5)")
        assert template.certify is False
        assert template.property_family is None
        assert template.monitor_threshold == 0.7
        assert template.monitor_family == "shallow"
        assert template.settings.telemetry == "on(5)"

    def test_telemetry_objective_enables_tracing_on_classical(self):
        template = prepare_template(classical_task(), OBJECTIVES["conservation"],
                                    telemetry="on(10)")
        assert template.settings.telemetry == "on(10)"
        assert template.scheme == "cubic"


# ---------------------------------------------------------------------- #
# Mutations
# ---------------------------------------------------------------------- #
class TestMutations:
    def test_topology_pool_all_parse(self):
        for spec in topology_pool():
            parse_topology(spec)

    def test_mutation_sequence_is_seed_deterministic(self):
        task = classical_task()
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(11)
            current, keys, actions = task, [], []
            for _ in range(12):
                current, step_actions = mutate_task(current, rng)
                keys.append(current.cell_key())
                actions.extend(step_actions)
            runs.append((keys, actions))
        assert runs[0] == runs[1]

    def test_mutations_stay_valid_and_journal_their_axis(self):
        rng = np.random.default_rng(3)
        current = classical_task()
        for _ in range(20):
            current, actions = mutate_task(current, rng, 1)
            assert len(actions) == 1
            axis = actions[0].split("=", 1)[0]
            assert axis in MUTATION_AXES
            # Every mutated cell is inside the validated grammar.
            parse_topology(current.settings.topology)
            parse_workload(current.settings.workload)
            current.cell_key()

    def test_n_mutations_controls_action_count(self):
        rng = np.random.default_rng(5)
        _, actions = mutate_task(classical_task(), rng, 3)
        assert len(actions) == 3

    def test_model_identity_never_mutated(self):
        rng = np.random.default_rng(9)
        template = classical_task()
        for _ in range(30):
            mutated, _ = mutate_task(template, rng, 2)
            assert mutated.model_kind == template.model_kind
            assert mutated.model_seed == template.model_seed
            assert mutated.training_steps == template.training_steps


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #
class TestShrink:
    def test_reduction_order_is_workload_first(self):
        task = classical_task(workload="poisson(0.5:cubic)", topology="fan_in(3)",
                              duration=6.0, trace="pulse-spike-24-96")
        actions = [action for action, _ in shrink_reductions(task)]
        assert actions[0] == "workload=static"
        assert "topology=single_bottleneck" in actions
        assert "topology=fan_in(2)" in actions
        assert "duration=3" in actions
        assert "trace=step-12-48" in actions

    def test_reductions_all_valid_cells(self):
        task = classical_task(workload="step(0-2:4-6)", topology="tree(3)",
                              duration=6.0)
        for action, smaller in shrink_reductions(task):
            parse_topology(smaller.settings.topology)
            parse_workload(smaller.settings.workload)
            smaller.cell_key()

    def test_fixed_shape_topology_not_shaved(self):
        actions = [action for action, _
                   in shrink_reductions(classical_task(topology="dumbbell"))]
        assert "topology=single_bottleneck" in actions
        assert not any(action.startswith("topology=dumbbell") for action in actions)

    def test_minimal_cell_yields_no_reductions(self):
        minimal = classical_task(workload="static", topology="single_bottleneck",
                                 duration=2.0, trace="step-12-48")
        assert shrink_reductions(minimal) == []

    def test_greedy_shrink_keeps_violation_and_journals_every_attempt(self):
        # A fake physics where only non-static workloads lose packets: the
        # shrinker must keep cross-traffic but win every other reduction.
        def evaluate(task):
            violating = task.settings.workload != "static"
            return {"loss_rate": 0.01 if violating else 0.0}

        start = classical_task(workload="responsive(cubic:2)", topology="fan_in(3)",
                               duration=6.0, trace="pulse-spike-24-96")
        emitted = []
        shrunk, trail = shrink_counterexample(start, LOSS_BURST, evaluate,
                                              emit=emitted.append)
        assert LOSS_BURST.violated(evaluate(shrunk))
        assert shrunk.settings.workload != "static"
        assert shrunk.settings.topology == "single_bottleneck"
        assert shrunk.settings.duration == 2.0
        assert shrunk.trace.name == "step-12-48"
        assert emitted == trail
        assert all(step["phase"] == "shrink" for step in trail)
        rejected = [step for step in trail if not step["accepted"]]
        assert rejected, "the workload=static cut must have been tried and rejected"

    def test_shrink_budget_caps_attempts(self):
        def evaluate(task):
            return {"loss_rate": 0.01}

        start = classical_task(workload="poisson(0.5:cubic)", topology="chain(4)",
                               duration=12.0)
        _, trail = shrink_counterexample(start, LOSS_BURST, evaluate, budget=3)
        assert len(trail) == 3


# ---------------------------------------------------------------------- #
# Promotion + the --check gate
# ---------------------------------------------------------------------- #
class TestPromoteAndCheck:
    @pytest.fixture()
    def promoted(self, tmp_path):
        # The golden store's shrunk cell: reliably violates loss_burst@0.001.
        task = classical_task(workload="responsive(cubic)")
        row = canonical_json(run_task(task))
        store_dir = tmp_path / "counterexamples"
        entry = promote_counterexample(store_dir, task, row,
                                       experiment="workload_stress",
                                       objective=LOSS_BURST,
                                       score=LOSS_BURST(row))
        return store_dir, task, row, entry

    def test_promotion_is_idempotent(self, promoted):
        store_dir, task, row, entry = promoted
        again = promote_counterexample(store_dir, task, row,
                                       experiment="workload_stress",
                                       objective=LOSS_BURST,
                                       score=LOSS_BURST(row))
        assert again["id"] == entry["id"] == counterexample_id(task.cell_key())
        assert len(load_counterexamples(store_dir)) == 1
        assert len(RunStore(store_dir)) == 1

    def test_check_green_on_fresh_promotion(self, promoted):
        store_dir, _, _, entry = promoted
        result = check_counterexamples(store_dir)
        assert result["passed"]
        (replay,) = result["results"]
        assert replay["id"] == entry["id"]
        assert replay["still_violated"] and replay["row_matches"]

    def test_check_red_on_tampered_row(self, promoted):
        store_dir, _, _, _ = promoted
        records_path = store_dir / "records.jsonl"
        record = json.loads(records_path.read_text())
        record["row"]["loss_rate"] = 0.5
        records_path.write_text(json.dumps(record, sort_keys=True) + "\n")
        result = check_counterexamples(store_dir)
        assert not result["passed"]
        (replay,) = result["results"]
        assert replay["still_violated"] and not replay["row_matches"]

    def test_check_red_when_no_longer_violating(self, promoted):
        store_dir, _, _, _ = promoted
        entries_path = store_dir / "counterexamples.jsonl"
        entry = json.loads(entries_path.read_text())
        entry["threshold"] = 10.0  # pretend the bar was much higher
        entries_path.write_text(json.dumps(entry, sort_keys=True) + "\n")
        result = check_counterexamples(store_dir)
        assert not result["passed"]
        (replay,) = result["results"]
        assert not replay["still_violated"]

    def test_check_empty_store_passes_trivially(self, tmp_path):
        result = check_counterexamples(tmp_path / "nothing-here")
        assert result["passed"] and result["results"] == []

    def test_load_rejects_incomplete_entries(self, tmp_path):
        path = tmp_path / "counterexamples.jsonl"
        path.write_text(json.dumps({"id": "abc"}) + "\n")
        with pytest.raises(ValueError, match="missing"):
            load_counterexamples(path)


# ---------------------------------------------------------------------- #
# Campaign determinism (the ISSUE's byte-identity pins)
# ---------------------------------------------------------------------- #
class TestCampaignDeterminism:
    def test_strategies_registered(self):
        assert set(STRATEGIES) == {"random", "evolve"}
        assert resolve_strategy("random").name == "random"
        with pytest.raises(ValueError, match="evolve"):
            resolve_strategy("simulated-annealing")

    def test_campaign_finds_shrinks_promotes_and_replays(self, tmp_path):
        store = RunStore(tmp_path / "campaign")
        summary = run_campaign(toy_campaign_config(), store)
        assert summary["candidates"] == 6
        assert summary["violations_found"] >= 1
        assert summary["best_score"] > LOSS_BURST.threshold
        assert len(summary["counterexamples"]) >= 1
        # The journal holds the full lifecycle: header, candidates, shrink
        # attempts, promotions.
        phases = [json.loads(line)["phase"]
                  for line in (store.path / "campaign.jsonl").read_text().splitlines()]
        assert phases[0] == "campaign"
        assert phases.count("candidate") == 6
        assert "shrink" in phases and "promote" in phases
        # Promoted counterexamples replay green in-process.
        result = check_counterexamples(store.path / "counterexamples")
        assert result["passed"] and result["results"]

    def test_same_seed_fresh_store_byte_identical(self, tmp_path):
        journals = []
        for name in ("a", "b"):
            store = RunStore(tmp_path / name)
            run_campaign(toy_campaign_config(), store)
            journals.append((store.path / "campaign.jsonl").read_bytes())
        assert journals[0] == journals[1]

    def test_serial_matches_jobs_2(self, tmp_path):
        serial = RunStore(tmp_path / "serial")
        run_campaign(toy_campaign_config(jobs=1), serial)
        sharded = RunStore(tmp_path / "sharded")
        run_campaign(toy_campaign_config(jobs=2), sharded)
        assert ((serial.path / "campaign.jsonl").read_bytes()
                == (sharded.path / "campaign.jsonl").read_bytes())
        serial_entries = (serial.path / "counterexamples"
                          / "counterexamples.jsonl").read_text()
        sharded_entries = (sharded.path / "counterexamples"
                           / "counterexamples.jsonl").read_text()
        assert serial_entries == sharded_entries

    def test_fully_cached_rerun_identical_and_computes_nothing(self, tmp_path):
        store = RunStore(tmp_path / "campaign")
        first = run_campaign(toy_campaign_config(), store)
        journal = (store.path / "campaign.jsonl").read_bytes()
        second = run_campaign(toy_campaign_config(), store)
        assert (store.path / "campaign.jsonl").read_bytes() == journal
        assert second["computed_cells"] == 0
        assert second["cached_cells"] >= first["candidates"]

    def test_different_seed_changes_candidates(self, tmp_path):
        store_a = RunStore(tmp_path / "seed7")
        run_campaign(toy_campaign_config(), store_a)
        store_b = RunStore(tmp_path / "seed8")
        run_campaign(toy_campaign_config(campaign_seed=8), store_b)
        keys_a = [json.loads(line)["key"]
                  for line in (store_a.path / "campaign.jsonl").read_text().splitlines()
                  if json.loads(line).get("phase") == "candidate"]
        keys_b = [json.loads(line)["key"]
                  for line in (store_b.path / "campaign.jsonl").read_text().splitlines()
                  if json.loads(line).get("phase") == "candidate"]
        assert keys_a != keys_b


# ---------------------------------------------------------------------- #
# Reporting
# ---------------------------------------------------------------------- #
class TestReport:
    @pytest.fixture(scope="class")
    def campaign_store(self, tmp_path_factory):
        store = RunStore(tmp_path_factory.mktemp("report") / "campaign")
        run_campaign(toy_campaign_config(), store)
        return store.path

    def test_report_stats(self, campaign_store):
        stats = report_stats(read_campaign(campaign_store))
        assert stats["experiment"] == "workload_stress"
        assert stats["objective"] == "loss_burst"
        assert stats["strategy"] == "random"
        assert stats["candidates"] == 6
        assert stats["violations_found"] >= 1
        assert stats["counterexamples_promoted"] >= 1
        assert stats["falsify_cells_per_sec"] > 0

    def test_format_report_is_human_readable(self, campaign_store):
        text = format_report(read_campaign(campaign_store))
        assert "falsify campaign: workload_stress" in text
        assert "violations:" in text
        assert "promoted" in text

    def test_non_campaign_store_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a falsify campaign store"):
            read_campaign(tmp_path)


# ---------------------------------------------------------------------- #
# CLI front door
# ---------------------------------------------------------------------- #
class TestFalsifyCli:
    def test_bare_falsify_shows_usage(self):
        with pytest.raises(SystemExit, match="usage"):
            main(["falsify"])

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit, match="loss_burst"):
            main(["falsify", "workload_stress", "--objective", "nope"])

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["falsify", "no-such-experiment", "--store", str(tmp_path / "s")])

    def test_report_requires_store(self):
        with pytest.raises(SystemExit, match="report"):
            main(["falsify", "report"])

    def test_campaign_check_and_report_end_to_end(self, tmp_path, capsys):
        store = str(tmp_path / "campaign")
        code = main(["falsify", "workload_stress",
                     "--objective", "loss_burst", "--threshold", "0.001",
                     "--strategy", "random", "--budget", "6",
                     "--set", "schemes=cubic", "--set", "duration=3",
                     "--set", "buffer_bdp=0.25",
                     "--campaign-seed", "7", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "falsify workload_stress [loss_burst/random]" in out
        assert "counterexample(s) promoted" in out

        assert main(["falsify", "--check",
                     str(tmp_path / "campaign" / "counterexamples")]) == 0
        assert "all green" in capsys.readouterr().out

        assert main(["falsify", "report", store]) == 0
        assert "falsify campaign: workload_stress" in capsys.readouterr().out

        assert main(["falsify", "report", store, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["violations_found"] >= 1


# ---------------------------------------------------------------------- #
# The committed golden counterexample store
# ---------------------------------------------------------------------- #
class TestGoldenCounterexampleStore:
    GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden",
                              "falsify_counterexamples")

    def test_golden_store_replays_green(self):
        entries = load_counterexamples(self.GOLDEN_DIR)
        assert entries, "golden falsify store must hold at least one counterexample"
        result = check_counterexamples(self.GOLDEN_DIR)
        assert result["passed"], (
            "golden counterexample drifted: either the physics changed (explain "
            "and regenerate per tests/golden/falsify_counterexamples/README.md) "
            "or the falsification replay codec broke")

    def test_golden_entries_carry_replay_provenance(self):
        for entry in load_counterexamples(self.GOLDEN_DIR):
            assert entry["objective"] == "loss_burst"
            assert entry["task"]["scheme"] == "cubic"  # classical: CI-reproducible
            assert entry["spec"]  # scenario spec for humans
            assert entry["source"]["shrink_attempts"] >= entry["source"]["shrink_accepted"]
