"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_DRIVERS, FIGURE_DRIVERS, build_parser, main
from repro.nn.serialization import load_weight_dict


def test_parser_requires_subcommand():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_list_traces(capsys):
    assert main(["list-traces"]) == 0
    out = capsys.readouterr().out
    assert "step-12-48" in out
    assert "cellular-att" in out


def test_unknown_trace_errors():
    with pytest.raises(SystemExit):
        main(["evaluate", "--trace", "not-a-trace", "--steps", "30"])


def test_train_command_saves_weights(tmp_path, capsys):
    out_path = tmp_path / "agent.npz"
    code = main(["train", "--kind", "orca", "--steps", "30", "--seed", "51",
                 "--out", str(out_path)])
    assert code == 0
    output = capsys.readouterr().out
    assert "trained orca" in output
    weights = load_weight_dict(out_path)
    assert "actor" in weights and "critic1" in weights


def test_evaluate_command_prints_table(capsys):
    code = main(["evaluate", "--kind", "canopy-shallow", "--steps", "30", "--seed", "52",
                 "--trace", "step-12-48", "--duration", "3.0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "canopy-shallow" in out and "cubic" in out and "utilization" in out


def test_certify_command_reports_qcsat(capsys):
    code = main(["certify", "--kind", "canopy-shallow", "--steps", "30", "--seed", "52",
                 "--trace", "step-12-48", "--duration", "3.0", "--components", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "QC_sat" in out


def test_figure_command_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "99"])


def test_figure_command_runs_driver(capsys):
    code = main(["figure", "17", "--steps", "40", "--seed", "53"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure/table 17" in out


def test_figure_driver_registry_covers_evaluation():
    expected = {"1", "2", "5", "6", "7", "9", "10", "11", "12", "13", "16", "17", "table4",
                "topology"}
    assert expected <= set(FIGURE_DRIVERS)


def test_list_traces_includes_topology_families(capsys):
    assert main(["list-traces"]) == 0
    out = capsys.readouterr().out
    assert "chain(3)" in out and "dumbbell" in out


def test_evaluate_with_topology_flag(capsys):
    code = main(["evaluate", "--kind", "canopy-shallow", "--steps", "30", "--seed", "52",
                 "--trace", "step-12-48", "--duration", "3.0", "--topology", "chain(2)"])
    assert code == 0
    out = capsys.readouterr().out
    assert "canopy-shallow" in out and "utilization" in out


def test_evaluate_rejects_bad_topology():
    with pytest.raises(ValueError):
        main(["evaluate", "--kind", "canopy-shallow", "--steps", "30", "--seed", "52",
              "--trace", "step-12-48", "--duration", "3.0", "--topology", "mesh(9)"])


def test_list_traces_includes_workload_specs(capsys):
    assert main(["list-traces"]) == 0
    out = capsys.readouterr().out
    assert "poisson(0.25)" in out and "responsive(cubic:2)" in out


def test_evaluate_with_workload_flag(capsys):
    code = main(["evaluate", "--kind", "canopy-shallow", "--steps", "30", "--seed", "52",
                 "--trace", "step-12-48", "--duration", "3.0",
                 "--topology", "fan_in(2)", "--workload", "responsive(cubic)"])
    assert code == 0
    out = capsys.readouterr().out
    assert "canopy-shallow" in out and "utilization" in out


def test_evaluate_rejects_bad_workload():
    with pytest.raises(ValueError):
        main(["evaluate", "--kind", "canopy-shallow", "--steps", "30", "--seed", "52",
              "--trace", "step-12-48", "--duration", "3.0", "--workload", "surge(9)"])


def test_compare_classical_with_workload(capsys):
    code = main(["compare-classical", "--traces", "1", "--duration", "3.0",
                 "--topology", "shared_segment", "--workload", "step(1-2)"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cubic" in out


def test_compare_classical_with_topology(capsys):
    code = main(["compare-classical", "--traces", "1", "--duration", "3.0",
                 "--topology", "parking_lot(2)"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cubic" in out


def test_compare_classical_command(capsys):
    code = main(["compare-classical", "--traces", "1", "--duration", "3.0"])
    assert code == 0
    out = capsys.readouterr().out
    for scheme in ("cubic", "newreno", "vegas", "bbr"):
        assert scheme in out


def test_experiment_registry_covers_topology_workloads():
    assert {"topology_sweep", "topology_generalization",
            "friendliness", "fairness"} <= set(EXPERIMENT_DRIVERS)


RUN_SETS = ["--set", "schemes=cubic", "--set", "families=single_bottleneck,chain(2)",
            "--set", "duration=2.0", "--set", "n_synthetic=1", "--set", "seeds=0"]


def test_run_list_shows_registered_experiments(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("topology_sweep", "topology_generalization", "fallback_runtime",
                 "friendliness", "fairness"):
        assert name in out
    assert "--set seeds=" in out


def test_run_unknown_experiment_errors(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="no experiment named"):
        main(["run", "not-an-experiment", "--resume"])
    # The typo'd name must not leave a stray default store directory behind.
    assert not (tmp_path / "runs").exists()


def test_run_unknown_axis_errors_listing_valid_axes():
    with pytest.raises(SystemExit, match="valid axes"):
        main(["run", "topology_sweep", "--set", "familiez=single_bottleneck"])


def test_run_malformed_set_errors():
    with pytest.raises(SystemExit, match="malformed"):
        main(["run", "topology_sweep", "--set", "families"])


def test_run_topology_sweep_with_store_and_resume(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["run", "topology_sweep", *RUN_SETS, "--store", store, "--resume"]) == 0
    first = capsys.readouterr().out
    assert "Run topology_sweep" in first
    assert "computed_cells: 2" in first and "cached_cells: 0" in first
    # Second run must serve every cell from the store.
    assert main(["run", "topology_sweep", *RUN_SETS, "--store", store, "--resume"]) == 0
    second = capsys.readouterr().out
    assert "computed_cells: 0" in second
    assert "resume: all 2 cells cached" in second
    # Cached cells did not tick this run, so no throughput is claimed.
    assert "ticks_per_sec: 0.0" in second
    # The store passes RunRecord schema validation end to end.
    from repro.harness.store import main as store_main

    assert store_main([store]) == 0


def test_experiment_unknown_name_errors():
    with pytest.raises(SystemExit):
        main(["experiment", "not-an-experiment"])


def test_experiment_is_a_deprecated_alias_of_run(caplog):
    import logging

    with caplog.at_level(logging.WARNING, logger="repro"):
        code = main(["experiment", "topology_sweep", "--steps", "30",
                     "--duration", "2.0", "--families", "single_bottleneck"])
    assert code == 0
    assert "experiment_deprecated" in caplog.text
    assert "repro run topology_sweep" in caplog.text


def test_figure_experiments_are_known_figure_ids():
    from repro.cli import FIGURE_EXPERIMENTS
    from repro.harness.registry import REGISTRY

    assert set(FIGURE_EXPERIMENTS) <= set(FIGURE_DRIVERS)
    for name, overrides in FIGURE_EXPERIMENTS.values():
        axes = REGISTRY.get(name).axes
        assert {"training_steps", "seeds"} <= set(axes)
        assert set(overrides) <= set(axes)


def test_figure_routes_registry_figures_through_resumable_store(
        tmp_path, capsys, monkeypatch):
    from repro.cli import FIGURE_EXPERIMENTS

    monkeypatch.setitem(FIGURE_EXPERIMENTS, "topology",
                        ("topology_sweep", {"families": ("single_bottleneck",),
                                            "schemes": ("cubic",),
                                            "duration": 2.0, "n_synthetic": 1}))
    store = str(tmp_path / "figstore")
    assert main(["figure", "topology", "--steps", "30", "--store", store]) == 0
    first = capsys.readouterr().out
    assert "Figure/table topology" in first and "computed_cells: 1" in first
    assert f"store: {store}" in first
    # Re-rendering the figure against the same store recomputes nothing.
    assert main(["figure", "topology", "--steps", "30", "--store", store]) == 0
    second = capsys.readouterr().out
    assert "computed_cells: 0" in second and "cached_cells: 1" in second
    # --fresh forces a full recompute.
    assert main(["figure", "topology", "--steps", "30", "--store", store,
                 "--fresh"]) == 0
    assert "computed_cells: 1" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# serve / status subcommands (ISSUE 8)
# --------------------------------------------------------------------- #
SERVE_SETS = ["--set", "schemes=cubic", "--set", "topology=single_bottleneck",
              "--set", "workload=static", "--set", "duration=2.0",
              "--set", "seeds=1,2"]


def test_serve_inline_then_status(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_MODEL_ZOO", str(tmp_path / "zoo"))
    store = str(tmp_path / "store")
    assert main(["serve", "workload_stress", *SERVE_SETS, "--store", store,
                 "--workers", "0"]) == 0
    out = capsys.readouterr().out
    assert "Serve workload_stress" in out
    assert "served: 2 cell(s)" in out and "0 reclaim(s)" in out
    assert main(["status", store]) == 0
    status_out = capsys.readouterr().out
    assert "experiment: workload_stress (done)" in status_out
    assert "2 completed" in status_out


def test_serve_unknown_experiment_errors(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="no experiment named"):
        main(["serve", "not-an-experiment"])
    assert not (tmp_path / "runs").exists()


def test_status_without_journal_errors(tmp_path):
    with pytest.raises(SystemExit, match="no lease journal"):
        main(["status", str(tmp_path)])


def test_experiment_command_runs_generalization_grid(capsys):
    code = main(["experiment", "topology_generalization", "--steps", "40", "--seed", "54",
                 "--duration", "2.0", "--families", "single_bottleneck,chain(2)", "--jobs", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Experiment topology_generalization" in out
    assert "train_family" in out and "eval_family" in out
    assert "mixed" in out and "chain(2)" in out


# --------------------------------------------------------------------- #
# trace subcommand (ISSUE 7)
# --------------------------------------------------------------------- #
TRACED_SETS = ["--set", "schemes=cubic", "--set", "topology=fan_in(3)",
               "--set", "workload=poisson(0.1)", "--set", "duration=2.0",
               "--set", "seeds=1", "--set", "telemetry=on(10)"]


@pytest.fixture(scope="module")
def traced_store(tmp_path_factory):
    """A one-cell traced workload_stress store, built once per module."""
    store = str(tmp_path_factory.mktemp("traced") / "store")
    assert main(["run", "workload_stress", *TRACED_SETS, "--store", store]) == 0
    return store


def test_trace_renders_timeline_and_summary(traced_store, capsys):
    capsys.readouterr()
    assert main(["trace", traced_store, "--validate"]) == 0
    out = capsys.readouterr().out
    assert "(schema valid)" not in out  # count and validity share one tag...
    assert "events, schema valid)" in out  # ...formatted as "(N events, schema valid)"
    assert "cell: scheme=cubic" in out
    for lane in ("drop", "flow", "conservation"):
        assert lane in out
    assert "tele_n_events" in out
    assert "1 traced cell(s)" in out


def test_trace_filters_event_groups(traced_store, capsys):
    capsys.readouterr()
    assert main(["trace", traced_store, "--events", "flow", "--width", "32"]) == 0
    out = capsys.readouterr().out
    assert "flow" in out and "conservation |" not in out


def test_trace_rejects_unknown_group(traced_store):
    with pytest.raises(SystemExit, match="unknown event group"):
        main(["trace", traced_store, "--events", "fallback,nope"])


def test_trace_cell_filter_no_match_lists_traced_cells(traced_store):
    with pytest.raises(SystemExit, match="no traced cell matching"):
        main(["trace", traced_store, "--cell", "scheme=bbr"])


def test_trace_untraced_store_exits_one(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["run", "topology_sweep", *RUN_SETS, "--store", store]) == 0
    capsys.readouterr()
    assert main(["trace", store]) == 1
    assert "no traced cells" in capsys.readouterr().out


def test_trace_rejects_non_store_path(tmp_path):
    with pytest.raises(SystemExit, match="not a run store"):
        main(["trace", str(tmp_path)])


def test_quiet_and_verbose_flags_configure_logging(tmp_path, capsys):
    import logging

    store = str(tmp_path / "store")
    assert main(["--verbose", "run", "topology_sweep", *RUN_SETS,
                 "--store", store]) == 0
    assert logging.getLogger("repro").level == logging.INFO
    assert main(["--quiet", "trace", store]) == 1  # untraced: exit 1, not a crash
    assert logging.getLogger("repro").level == logging.ERROR
