"""Tests for the experiment registry: axes, overrides, store-backed resume."""

import pytest

from repro.harness.evaluate import EvaluationSettings
from repro.harness.parallel import ExperimentTask, run_task
from repro.harness.registry import (
    REGISTRY,
    ExperimentRegistry,
    coerce_axis_value,
    parse_set_overrides,
)
from repro.harness.store import RunStore
from repro.traces.trace import BandwidthTrace

TOY_AXES = {
    "schemes": ("cubic", "vegas", "newreno"),
    "duration": 2.0,
    "buffer_bdp": 1.0,
    "seeds": (7,),
    "stochastic": False,
    "label": None,
}


def _toy_build(axes):
    trace = BandwidthTrace.constant(12.0, duration=30.0, name="const-12")
    tasks = []
    for seed in axes["seeds"]:
        settings = EvaluationSettings(duration=axes["duration"],
                                      buffer_bdp=axes["buffer_bdp"], seed=seed)
        for index, scheme in enumerate(axes["schemes"]):
            tasks.append(ExperimentTask(scheme=scheme, trace=trace, settings=settings,
                                        tags={"cell": index}))
    return tasks


def make_registry() -> ExperimentRegistry:
    registry = ExperimentRegistry()
    registry.register("toy", axes=TOY_AXES, description="toy classical grid")(_toy_build)
    return registry


#: Module-level flaky runner so the interruption test can kill a sweep
#: mid-grid deterministically (serial order) and then let the resume finish.
_FLAKY = {"fail_after": None, "count": 0}


def flaky_run_task(task):
    if _FLAKY["fail_after"] is not None and _FLAKY["count"] >= _FLAKY["fail_after"]:
        raise RuntimeError("simulated mid-sweep crash")
    _FLAKY["count"] += 1
    return run_task(task)


class TestRegistration:
    def test_names_describe_and_lookup(self):
        registry = make_registry()
        assert registry.names() == ["toy"]
        entry = registry.describe()[0]
        assert entry["experiment"] == "toy"
        assert entry["description"] == "toy classical grid"
        assert entry["axes"]["duration"] == 2.0
        with pytest.raises(ValueError, match="no experiment named"):
            registry.get("nope")

    def test_builtin_experiments_registered(self):
        assert {"topology_sweep", "topology_generalization", "fallback_runtime",
                "friendliness", "fairness", "workload_stress",
                # The paper-figure grids demoted to registry experiments.
                "qcsat_buffers", "qcsat_robustness", "performance_sweep",
                "realworld_deployment"} <= set(REGISTRY.names())

    def test_reregistering_replaces(self):
        registry = make_registry()
        registry.register("toy", axes={"duration": 1.0})(_toy_build)
        assert registry.get("toy").axes == {"duration": 1.0}


class TestAxisOverrides:
    def test_unknown_axis_rejected_with_valid_axes(self):
        registry = make_registry()
        with pytest.raises(ValueError) as excinfo:
            registry.run("toy", {"durations": "3.0"})
        message = str(excinfo.value)
        assert "durations" in message and "duration" in message and "seeds" in message

    def test_string_coercion_by_default_type(self):
        registry = make_registry()
        axes = registry.resolve_axes("toy", {
            "duration": "3.5", "stochastic": "true", "label": "none",
            "schemes": "cubic,bbr", "seeds": "0..3,9",
        })
        assert axes["duration"] == 3.5
        assert axes["stochastic"] is True
        assert axes["label"] is None
        assert axes["schemes"] == ("cubic", "bbr")
        assert axes["seeds"] == (0, 1, 2, 3, 9)

    def test_typed_overrides_pass_through(self):
        registry = make_registry()
        axes = registry.resolve_axes("toy", {"seeds": [1, 2], "duration": 4.0,
                                             "schemes": "vegas"})
        assert axes["seeds"] == (1, 2)
        assert axes["duration"] == 4.0
        assert axes["schemes"] == ("vegas",)

    def test_scalar_coercion_helpers(self):
        assert coerce_axis_value("x", "3", 1) == 3
        assert coerce_axis_value("x", "off", True) is False
        assert coerce_axis_value("x", "1.5,2", (1.0,)) == (1.5, 2.0)
        assert coerce_axis_value("x", 5, (1,)) == (5,)
        with pytest.raises(ValueError, match="axis 'x'"):
            coerce_axis_value("x", "not-a-number", 1)
        with pytest.raises(ValueError, match="boolean"):
            coerce_axis_value("x", "maybe", True)

    def test_coerce_scalar_int_axis_accepts_whole_floats(self):
        # "2.0" is a whole number, so an int-typed axis takes it; a true
        # fraction is a pointed error, not a silent truncation.
        assert coerce_axis_value("x", "2.0", 1) == 2
        assert isinstance(coerce_axis_value("x", "2.0", 1), int)
        with pytest.raises(ValueError, match="integer-typed"):
            coerce_axis_value("x", "0.5", 1)

    def test_coerce_scalar_bool_not_int(self):
        # bool is an int subclass; the coercion must not treat a bool axis
        # as integer-typed (nor an int axis as boolean).
        assert coerce_axis_value("x", "yes", False) is True
        assert coerce_axis_value("x", "3", 1) == 3

    def test_float_ranges_expand(self):
        # Ranges work for float-typed axes too, cast to the axis type.
        assert coerce_axis_value("x", "0..2", (0.0, 0.5)) == (0.0, 1.0, 2.0)
        assert all(isinstance(v, float)
                   for v in coerce_axis_value("x", "0..2", (0.0,)))
        assert coerce_axis_value("x", "5..1", (1,)) == (5, 4, 3, 2, 1)
        # A fractional endpoint is a plain list element, not a range.
        assert coerce_axis_value("x", "0.5,1.5", (0.0,)) == (0.5, 1.5)

    def test_parse_set_overrides(self):
        assert parse_set_overrides(["a=1", "b=x,y"]) == {"a": "1", "b": "x,y"}
        with pytest.raises(ValueError, match="malformed"):
            parse_set_overrides(["a"])
        with pytest.raises(ValueError, match="duplicate"):
            parse_set_overrides(["a=1", "a=2"])


class TestRunAndResume:
    def test_serial_and_parallel_rows_identical(self):
        registry = make_registry()
        serial = registry.run("toy")
        parallel = registry.run("toy", n_jobs=2)
        assert serial["rows"] == parallel["rows"]
        assert serial["experiment"] == "toy"
        assert serial["computed_cells"] == 3 and serial["cached_cells"] == 0
        assert serial["axes"]["seeds"] == [7]

    def test_store_resume_serves_cached_rows_byte_identical(self, tmp_path):
        registry = make_registry()
        baseline = registry.run("toy")
        first = registry.run("toy", store=RunStore(tmp_path), resume=True)
        second = registry.run("toy", store=RunStore(tmp_path), resume=True)
        assert first["rows"] == baseline["rows"] == second["rows"]
        assert first["computed_cells"] == 3 and first["cached_cells"] == 0
        assert second["computed_cells"] == 0 and second["cached_cells"] == 3

    def test_fully_cached_resume_skips_setup(self, tmp_path):
        # Setup (model pre-training) is the dominant cost of learned grids; a
        # resume that computes nothing must not pay it.
        calls = {"setup": 0}

        def counting_setup(axes):
            calls["setup"] += 1

        registry = ExperimentRegistry()
        registry.register("toy-setup", axes=TOY_AXES, setup=counting_setup)(_toy_build)
        registry.run("toy-setup", store=RunStore(tmp_path), resume=True)
        assert calls["setup"] == 1
        cached = registry.run("toy-setup", store=RunStore(tmp_path), resume=True)
        assert cached["computed_cells"] == 0
        assert calls["setup"] == 1  # not called again

    def test_store_without_resume_recomputes_but_persists(self, tmp_path):
        registry = make_registry()
        store = RunStore(tmp_path)
        registry.run("toy", store=store)
        result = registry.run("toy", store=store)  # no resume: recompute all
        assert result["cached_cells"] == 0 and result["computed_cells"] == 3
        assert len(RunStore(tmp_path)) == 3

    def test_override_invalidates_cache_keys(self, tmp_path):
        registry = make_registry()
        registry.run("toy", store=RunStore(tmp_path), resume=True)
        changed = registry.run("toy", {"duration": "3.0"},
                               store=RunStore(tmp_path), resume=True)
        assert changed["cached_cells"] == 0 and changed["computed_cells"] == 3

    def test_kill_mid_sweep_then_resume_matches_serial_run(self, tmp_path):
        """The satellite resume contract: a sweep killed mid-grid keeps its
        finished cells, and the resumed run's rows are byte-identical to an
        uninterrupted serial run."""
        registry = ExperimentRegistry()
        registry.register("toy-flaky", axes=TOY_AXES,
                          runner=flaky_run_task)(_toy_build)
        baseline = make_registry().run("toy")

        _FLAKY["fail_after"], _FLAKY["count"] = 2, 0
        store = RunStore(tmp_path)
        try:
            with pytest.raises(RuntimeError, match="simulated mid-sweep crash"):
                registry.run("toy-flaky", store=store, resume=True)
            # The two cells that finished before the crash were persisted.
            assert len(RunStore(tmp_path)) == 2
            _FLAKY["fail_after"] = None
            resumed = registry.run("toy-flaky", store=RunStore(tmp_path), resume=True)
        finally:
            _FLAKY["fail_after"], _FLAKY["count"] = None, 0
        assert resumed["cached_cells"] == 2 and resumed["computed_cells"] == 1
        assert resumed["rows"] == baseline["rows"]
        assert [row["cell"] for row in resumed["rows"]] == [0, 1, 2]

    def test_multi_seed_axis_expands_grid(self):
        registry = make_registry()
        result = registry.run("toy", {"seeds": "5,6", "schemes": "cubic"})
        assert result["computed_cells"] == 2
        assert [row["seed"] for row in result["rows"]] == [5, 6]

    def test_records_stamp_producer_provenance(self, tmp_path):
        registry = make_registry()
        registry.run("toy", store=RunStore(tmp_path / "serial"))
        registry.run("toy", n_jobs=2, store=RunStore(tmp_path / "pool"))
        assert {record.producer
                for record in RunStore(tmp_path / "serial").records()} == {"serial"}
        assert {record.producer
                for record in RunStore(tmp_path / "pool").records()} == {"pool"}


class TestPlanAndFinalize:
    def test_plan_expands_grid_without_running(self):
        registry = make_registry()
        plan = registry.plan("toy", {"schemes": "cubic,vegas"})
        assert [task.scheme for task in plan.tasks] == ["cubic", "vegas"]
        assert plan.keys == [task.cell_key() for task in plan.tasks]
        assert plan.axes["schemes"] == ("cubic", "vegas")

    def test_finalize_matches_run_result(self):
        # run() and the serve daemon both aggregate through finalize(); the
        # result shape (rows, axes echo, cache accounting) must agree.
        registry = make_registry()
        result = registry.run("toy")
        plan = registry.plan("toy")
        finalized = registry.finalize(plan, result["rows"], wall_clock_s=1.0,
                                      n_jobs=1, n_cached=0)
        assert finalized["rows"] == result["rows"]
        assert finalized["experiment"] == "toy"
        assert finalized["axes"] == result["axes"]
        assert finalized["computed_cells"] == result["computed_cells"]
