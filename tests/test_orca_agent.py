"""Tests for the two-level LearnedController and the cwnd map."""

import numpy as np
import pytest

from repro.cc.cubic import CubicController
from repro.cc.flow import Flow
from repro.cc.link import BottleneckLink
from repro.cc.netsim import NetworkSimulator
from repro.orca.agent import LearnedController, cwnd_from_action
from repro.orca.observations import ObservationConfig
from repro.traces.trace import BandwidthTrace


def constant_policy(value: float):
    return lambda state: np.array([value])


def run_learned(policy, duration=3.0, monitor_interval=0.2, decision_filter=None,
                observation_noise=0.0, mbps=24.0):
    controller = LearnedController(policy, observation_config=ObservationConfig(),
                                   monitor_interval=monitor_interval,
                                   decision_filter=decision_filter,
                                   observation_noise=observation_noise, noise_seed=0)
    trace = BandwidthTrace.constant(mbps, duration=duration + 5)
    link = BottleneckLink(trace, min_rtt=0.04, buffer_bdp=2.0)
    sim = NetworkSimulator(link, [Flow(0, controller)], dt=0.01)
    sim.run(duration)
    return controller, sim


class TestCwndMap:
    def test_equation_one(self):
        assert cwnd_from_action(0.0, 10.0) == pytest.approx(10.0)
        assert cwnd_from_action(1.0, 10.0) == pytest.approx(40.0)
        assert cwnd_from_action(-1.0, 10.0) == pytest.approx(2.5)

    def test_action_clipped(self):
        assert cwnd_from_action(10.0, 10.0) == pytest.approx(40.0)

    def test_minimum_window_enforced(self):
        assert cwnd_from_action(-1.0, 0.5) >= 2.0


class TestLearnedController:
    def test_invalid_monitor_interval(self):
        with pytest.raises(ValueError):
            LearnedController(constant_policy(0.0), monitor_interval=0.0)

    def test_decisions_made_every_monitor_interval(self):
        controller, sim = run_learned(constant_policy(0.0), duration=2.0, monitor_interval=0.2)
        assert len(controller.decisions) == pytest.approx(10, abs=1)

    def test_neutral_action_keeps_cubic_window(self):
        controller, _ = run_learned(constant_policy(0.0), duration=2.0)
        for decision in controller.decisions:
            assert decision.cwnd_after == pytest.approx(decision.cwnd_tcp, rel=1e-6)

    def test_positive_action_multiplies_window(self):
        controller, _ = run_learned(constant_policy(0.5), duration=2.0)
        for decision in controller.decisions:
            assert decision.cwnd_after == pytest.approx(2.0 * decision.cwnd_tcp, rel=1e-6)

    def test_aggressive_negative_action_hurts_throughput(self):
        neutral, sim_neutral = run_learned(constant_policy(0.0), duration=4.0)
        throttled, sim_throttled = run_learned(constant_policy(-1.0), duration=4.0)
        neutral_acked = sim_neutral.stats[0].acked.sum()
        throttled_acked = sim_throttled.stats[0].acked.sum()
        assert throttled_acked < neutral_acked

    def test_decision_filter_forces_fallback(self):
        filter_calls = []

        def deny_all(state, cwnd_tcp, cwnd_prev):
            filter_calls.append(cwnd_tcp)
            return False, 0.1

        controller, _ = run_learned(constant_policy(1.0), duration=2.0, decision_filter=deny_all)
        assert len(filter_calls) == len(controller.decisions)
        assert controller.fallback_fraction == pytest.approx(1.0)
        # With the learned action vetoed, the CUBIC window is left untouched.
        for decision in controller.decisions:
            assert decision.cwnd_after == pytest.approx(decision.cwnd_tcp)
        assert controller.mean_qc == pytest.approx(0.1)

    def test_observation_noise_changes_states_not_crash(self):
        noisy, _ = run_learned(constant_policy(0.0), duration=2.0, observation_noise=0.05)
        clean, _ = run_learned(constant_policy(0.0), duration=2.0, observation_noise=0.0)
        assert len(noisy.decisions) == len(clean.decisions)

    def test_reset_clears_decisions(self):
        controller, _ = run_learned(constant_policy(0.0), duration=1.0)
        controller.reset()
        assert controller.decisions == []
        assert controller.fallback_fraction == 0.0
        assert controller.mean_qc == 1.0

    def test_cwnd_property_delegates_to_inner(self):
        inner = CubicController(initial_cwnd=17.0)
        controller = LearnedController(constant_policy(0.0), inner=inner)
        assert controller.cwnd == pytest.approx(17.0)
        controller.set_cwnd(42.0)
        assert inner.cwnd == pytest.approx(42.0)

    def test_decision_records_contain_state_vectors(self):
        controller, _ = run_learned(constant_policy(0.2), duration=1.0)
        config = ObservationConfig()
        for decision in controller.decisions:
            assert decision.state.shape == (config.state_dim,)
            assert -1.0 <= decision.action <= 1.0
