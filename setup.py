"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip combination lacks the ``wheel`` package
(legacy ``pip install -e .`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
